"""Tests for repro.analyze: lint rules, emitted-source verification, CLI.

Every lint rule gets at least one seeded-broken spec (positive) and one
clean fixture (negative); the registered-model sweep proves the shipped
registry lints clean; and the AST verifier is driven both over genuine
engines (clean) and over deliberately tampered emitted source (each SV
rule fires).
"""

import io
import json
import types

import pytest

from repro.analyze import (
    RULES,
    exceeds,
    lint_model,
    lint_net,
    lint_registered,
    lint_spec,
    max_severity,
    record_rule_hits,
    verify_backend,
    verify_engine,
    verify_model,
)
from repro.analyze.cli import main as analyze_main
from repro.core.engine import EngineOptions
from repro.describe.spec import (
    CacheLevelSpec,
    FetchSpec,
    HazardSpec,
    IssueSpec,
    MemorySpec,
    OpClassPathSpec,
    PipelineSpec,
    PlaceSpec,
    StageSpec,
    TransitionSpec,
)
from repro.processors.registry import build_processor, processor_names


def rules_of(findings):
    return {entry.rule for entry in findings}


def mini_spec(
    path=None,
    stages=None,
    hazards=None,
    issue=None,
    fetch=None,
    memory=None,
):
    """A minimal clean three-stage single-path pipeline, with overrides."""
    if path is None:
        path = OpClassPathSpec(
            "alu",
            stages=("F", "X", "W"),
            transitions=(
                TransitionSpec("D", "F", "X"),
                TransitionSpec("E", "X", "W"),
                TransitionSpec("We", "W", "end"),
            ),
        )
    return PipelineSpec(
        name="mini",
        stages=stages or (StageSpec("F"), StageSpec("X"), StageSpec("W")),
        paths=(path,),
        hazards=hazards or HazardSpec(forward_states=("W",)),
        issue=issue or IssueSpec(),
        fetch=fetch or FetchSpec(),
        memory=memory or MemorySpec(),
    )


# ---------------------------------------------------------------------------
# Spec-level rules (AN0xx)
# ---------------------------------------------------------------------------


def test_mini_spec_lints_clean():
    assert lint_spec(mini_spec()) == []


def test_an001_non_spec_input():
    findings = lint_spec(object())
    assert rules_of(findings) == {"AN001"}
    assert findings[0].severity == "error"


def test_an001_validate_rejection_with_did_you_mean():
    spec = mini_spec(
        path=OpClassPathSpec(
            "aluu",
            stages=("F", "X", "W"),
            transitions=(
                TransitionSpec("D", "F", "X"),
                TransitionSpec("E", "X", "W"),
                TransitionSpec("We", "W", "end"),
            ),
        )
    )
    findings = lint_spec(spec)
    assert rules_of(findings) == {"AN001"}
    assert any("unknown operation class" in f.message for f in findings)
    assert any("did you mean 'alu'" in f.message for f in findings)


def test_an002_an009_an004_dead_consume_chain():
    # E consumes a reservation nobody produces: E is dead, a token parked
    # in X jams (siphon), and the path can never retire.
    spec = mini_spec(
        path=OpClassPathSpec(
            "alu",
            stages=("F", "X", "W"),
            extra_places=(PlaceSpec("lock", "X"),),
            transitions=(
                TransitionSpec("D", "F", "X"),
                TransitionSpec("E", "X", "W", consumes=("lock",)),
                TransitionSpec("We", "W", "end"),
            ),
        )
    )
    findings = lint_spec(spec)
    assert {"AN002", "AN009", "AN004", "AN003"} <= rules_of(findings)
    dead = [f for f in findings if f.rule == "AN002"]
    assert any("'E'" in f.message and "'lock'" in f.message for f in dead)
    # 'We' is dead transitively: its source W is never occupied.
    assert any("'We'" in f.message for f in dead)
    assert all(f.severity == "error" for f in findings if f.rule == "AN009")


def test_an003_skipped_stage_unreachable():
    spec = mini_spec(
        path=OpClassPathSpec(
            "alu",
            stages=("F", "X", "W"),
            transitions=(
                TransitionSpec("D", "F", "X"),
                TransitionSpec("E", "X", "end"),
            ),
        )
    )
    findings = lint_spec(spec)
    assert rules_of(findings) == {"AN003"}
    assert "'W'" in findings[0].message


def test_an005_reservation_leak_names_blocking_stage():
    spec = mini_spec(
        path=OpClassPathSpec(
            "alu",
            stages=("F", "X", "W"),
            extra_places=(PlaceSpec("buf", "X"),),
            transitions=(
                TransitionSpec("D", "F", "X", produces=("buf",)),
                TransitionSpec("E", "X", "W"),
                TransitionSpec("We", "W", "end"),
            ),
        )
    )
    findings = lint_spec(spec)
    assert rules_of(findings) == {"AN005"}
    assert "'buf'" in findings[0].message
    assert "fills up and blocks" in findings[0].message


def test_an005_negative_balanced_reservation():
    spec = mini_spec(
        path=OpClassPathSpec(
            "alu",
            stages=("F", "X", "W"),
            extra_places=(PlaceSpec("buf", "X"),),
            transitions=(
                TransitionSpec("D", "F", "X", produces=("buf",)),
                TransitionSpec("E", "X", "W", consumes=("buf",)),
                TransitionSpec("We", "W", "end"),
            ),
        )
    )
    assert lint_spec(spec) == []


def test_an006_narrow_front_end_stage():
    spec = mini_spec(
        stages=(StageSpec("F"), StageSpec("X", capacity=2), StageSpec("W", capacity=2)),
        issue=IssueSpec(width=2, stage="X"),
    )
    findings = lint_spec(spec)
    assert rules_of(findings) == {"AN006"}
    assert "'F'" in findings[0].message and "width 2" in findings[0].message


def test_an006_negative_wide_front_end():
    spec = mini_spec(
        stages=(
            StageSpec("F", capacity=2),
            StageSpec("X", capacity=2),
            StageSpec("W", capacity=2),
        ),
        issue=IssueSpec(width=2, stage="X"),
    )
    assert lint_spec(spec) == []


def test_an007_no_forwarding_on_deep_pipeline():
    spec = mini_spec(hazards=HazardSpec())
    findings = lint_spec(spec)
    assert rules_of(findings) == {"AN007"}
    assert "stalls until writeback" in findings[0].message


def test_an007_negative_s1_forward_state_counts():
    spec = mini_spec(hazards=HazardSpec(s1_forward_state="W"))
    assert lint_spec(spec) == []


def test_an008_geometry_smells():
    memory = MemorySpec(
        l1_data=CacheLevelSpec(
            name="D$", size_bytes=1024, line_bytes=32, associativity=32
        ),
        l2=CacheLevelSpec(
            name="L2", size_bytes=4096, line_bytes=16, associativity=4, hit_latency=40
        ),
    )
    findings = lint_spec(mini_spec(memory=memory))
    assert rules_of(findings) == {"AN008"}
    messages = " | ".join(f.message for f in findings)
    assert "associativity 32 exceeds" in messages
    assert "smaller than L1" in messages
    assert "line size" in messages
    assert "never pays off" in messages


def test_an008_negative_default_memory():
    assert lint_spec(mini_spec(memory=MemorySpec())) == []


def test_an010_unwired_fetch_stall():
    spec = mini_spec(
        stages=(
            StageSpec("F"),
            StageSpec("X"),
            StageSpec("W"),
            StageSpec("FS"),
        ),
        fetch=FetchSpec(stall_stage="FS"),
    )
    findings = lint_spec(spec)
    assert rules_of(findings) == {"AN010"}
    assert "'FS'" in findings[0].message


def test_an010_negative_wired_fetch_stall():
    spec = mini_spec(
        path=OpClassPathSpec(
            "alu",
            stages=("F", "X", "W"),
            extra_places=(PlaceSpec("stall", "FS"),),
            transitions=(
                TransitionSpec("D", "F", "X", produces=("stall",)),
                TransitionSpec("E", "X", "W", consumes=("stall",)),
                TransitionSpec("We", "W", "end"),
            ),
        ),
        stages=(
            StageSpec("F"),
            StageSpec("X"),
            StageSpec("W"),
            StageSpec("FS"),
        ),
        fetch=FetchSpec(stall_stage="FS"),
    )
    assert lint_spec(spec) == []


# ---------------------------------------------------------------------------
# Net-level rules (AN1xx)
# ---------------------------------------------------------------------------


def test_an101_elaboration_failure_is_a_finding(monkeypatch):
    from repro.processors import registry

    spec = mini_spec(
        path=OpClassPathSpec(
            "alu",
            stages=("F", "X", "W"),
            transitions=(
                TransitionSpec("D", "F", "X", hooks="no.such.hook"),
                TransitionSpec("E", "X", "W"),
                TransitionSpec("We", "W", "end"),
            ),
        )
    )
    monkeypatch.setitem(
        registry._REGISTRY,
        "broken-hooks",
        registry.ProcessorEntry(
            name="broken-hooks",
            builder=None,
            spec_factory=lambda: spec,
            lint=False,
        ),
    )
    findings = lint_model("broken-hooks")
    assert rules_of(findings) == {"AN101"}
    assert findings[0].location == "net:elaborate"
    # lint=False keeps it out of the default sweep.
    assert "broken-hooks" not in lint_registered()


def test_an102_dead_dispatch_place():
    net = build_processor("example").net
    place = net.place("alu.L2")
    net.transitions = [t for t in net.transitions if t.source is not place]
    findings = lint_net(net)
    assert "AN102" in rules_of(findings)
    assert any("alu.L2" in f.location for f in findings if f.rule == "AN102")


def test_an103_orphan_place():
    net = build_processor("example").net
    net.add_place(net.stage("L2"), net.subnets["alu"], name="alu.orphan")
    findings = lint_net(net)
    assert rules_of(findings) == {"AN103"}
    assert "alu.orphan" in findings[0].location


def test_net_lint_clean_on_shipped_model():
    assert lint_net(build_processor("example").net) == []


# ---------------------------------------------------------------------------
# Registry sweep: every shipped model lints clean
# ---------------------------------------------------------------------------


def test_all_registered_models_lint_clean():
    results = lint_registered()
    assert set(results) == set(processor_names())
    dirty = {name: findings for name, findings in results.items() if findings}
    assert dirty == {}


def test_lint_registered_records_metrics():
    from repro.observe.metrics import MetricsRegistry, snapshot_value

    metrics = MetricsRegistry()
    lint_registered(names=("example",), metrics=metrics)
    snapshot = metrics.snapshot()
    assert snapshot_value(snapshot, "analyze.models_clean") == 1
    assert snapshot_value(snapshot, "analyze.models_dirty") == 0


def test_record_rule_hits_counts_by_rule_and_severity():
    from repro.observe.metrics import MetricsRegistry, snapshot_value

    findings = lint_spec(mini_spec(hazards=HazardSpec()))
    metrics = MetricsRegistry()
    record_rule_hits(metrics, findings)
    snapshot = metrics.snapshot()
    assert snapshot_value(snapshot, "analyze.rule.AN007") == 1
    assert snapshot_value(snapshot, "analyze.findings.warning") == 1


def test_severity_helpers():
    findings = lint_spec(mini_spec(hazards=HazardSpec()))
    assert max_severity(findings) == "warning"
    assert exceeds(findings, "warning")
    assert not exceeds(findings, "error")
    assert max_severity([]) is None


# ---------------------------------------------------------------------------
# Emitted-source verification (SV0xx)
# ---------------------------------------------------------------------------

VERIFY_MODELS = tuple(processor_names())


@pytest.mark.parametrize("model", VERIFY_MODELS)
@pytest.mark.parametrize("backend", ("generated", "batched"))
def test_emitted_source_verifies_clean(model, backend):
    assert verify_model(model, backend=backend) == []


@pytest.mark.parametrize("backend", ("generated", "batched"))
def test_traced_emission_verifies_clean(backend):
    assert verify_model("example", backend=backend, trace=True) == []
    assert verify_model("strongarm", backend=backend, trace=True) == []


def _engine(model="example", backend="generated", trace=False):
    options = {"backend": backend}
    if trace:
        options["trace"] = {"categories": ("firing", "stall"), "capacity": 64}
    return build_processor(model, engine_options=EngineOptions(**options)).engine


def _tampered(engine, source):
    return types.SimpleNamespace(
        net=engine.net,
        options=engine.options,
        schedule=engine.schedule,
        module=engine.module,
        source=source,
    )


def test_sv001_constant_tamper_detected():
    engine = _engine()
    source = engine.source.replace(
        "MODEL = %r" % engine.net.name, "MODEL = 'someone-else'"
    )
    assert source != engine.source
    findings = verify_engine(_tampered(engine, source))
    assert "SV001" in rules_of(findings)
    assert any("MODEL" in f.location for f in findings)


def test_sv002_dispatch_branch_tamper_detected():
    engine = _engine()
    source = engine.source.replace("_oc == 'alu'", "_oc == 'mul'", 1)
    assert source != engine.source
    findings = verify_engine(_tampered(engine, source))
    assert "SV002" in rules_of(findings)


def test_sv003_place_order_tamper_detected():
    engine = _engine()
    source = engine.source.replace("_t = p0.tokens", "_t = p99.tokens", 1)
    assert source != engine.source
    findings = verify_engine(_tampered(engine, source))
    assert "SV003" in rules_of(findings)


def test_sv004_missing_firing_site_detected():
    engine = _engine()
    source = engine.source.replace("tf['D_alu'] += 1", "pass", 1)
    assert source != engine.source
    findings = verify_engine(_tampered(engine, source))
    assert "SV004" in rules_of(findings)
    assert any("D_alu" in f.location for f in findings if f.rule == "SV004")


def test_sv005_stripped_gate_call_detected():
    import re

    engine = _engine()
    source = re.sub(r"\bg\d+\(token, ctx\)", "True", engine.source, count=1)
    assert source != engine.source
    findings = verify_engine(_tampered(engine, source))
    assert "SV005" in rules_of(findings)


def test_sv006_stripped_trace_sites_detected():
    engine = _engine(trace=True)
    assert "TRF(" in engine.source
    source = "\n".join(
        line for line in engine.source.splitlines() if "TRF(" not in line
    )
    findings = verify_engine(_tampered(engine, source))
    assert "SV006" in rules_of(findings)


def test_sv006_injected_trace_sites_detected():
    # Tracing off: grafting a traced module's body in must be caught.
    traced = _engine(trace=True)
    plain = _engine(trace=False)
    findings = verify_engine(_tampered(plain, traced.source))
    assert "SV006" in rules_of(findings)


def test_sv007_emit_report_tamper_detected():
    import re

    engine = _engine()
    source = re.sub(
        r"('transitions_compiled': )\d+", r"\g<1>999", engine.source, count=1
    )
    assert source != engine.source
    findings = verify_engine(_tampered(engine, source))
    assert "SV007" in rules_of(findings)


def test_sv008_batched_mode_tamper_detected():
    engine = _engine(backend="batched")
    source = engine.source.replace(
        "EMISSION_MODE = 'batched'", "EMISSION_MODE = 'scalar'"
    )
    assert source != engine.source
    findings = verify_engine(_tampered(engine, source))
    assert "SV008" in rules_of(findings)


# ---------------------------------------------------------------------------
# Backend coherence (SV1xx)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ("interpreted", "compiled"))
def test_backend_coherence_clean(backend):
    assert verify_backend("example", backend) == []
    assert verify_backend("xscale", backend) == []


def test_sv101_schedule_divergence_detected(monkeypatch):
    import repro.core.scheduler as scheduler

    original = scheduler.place_evaluation_order

    def reversed_order(net):
        return list(reversed(original(net)))

    monkeypatch.setattr(scheduler, "place_evaluation_order", reversed_order)
    findings = verify_backend("example", "interpreted")
    assert "SV101" in rules_of(findings)


def test_sv102_plan_summary_divergence_detected(monkeypatch):
    from repro.compiled.engine import CompiledEngine

    original = CompiledEngine.compilation_summary

    def tampered(self):
        summary = dict(original(self))
        summary["transitions_compiled"] = 0
        return summary

    monkeypatch.setattr(CompiledEngine, "compilation_summary", tampered)
    findings = verify_backend("example", "compiled")
    assert "SV102" in rules_of(findings)
    assert any("transitions_compiled" in f.location for f in findings)


# ---------------------------------------------------------------------------
# Findings plumbing and CLI
# ---------------------------------------------------------------------------


def test_finding_round_trips_through_json():
    findings = lint_spec(mini_spec(hazards=HazardSpec()))
    payload = json.loads(json.dumps([f.to_dict() for f in findings]))
    assert payload[0]["rule"] == "AN007"
    assert payload[0]["slug"] == RULES["AN007"].slug
    assert payload[0]["severity"] == "warning"


def test_cli_lint_all_clean():
    out = io.StringIO()
    assert analyze_main(["lint", "--all", "--fail-on", "warning"], out=out) == 0
    text = out.getvalue()
    assert "CLEAN" in text
    assert "0 finding(s)" in text


def test_cli_lint_json_document():
    out = io.StringIO()
    assert analyze_main(["lint", "example", "--format", "json"], out=out) == 0
    document = json.loads(out.getvalue())
    assert document["command"] == "lint"
    assert document["clean"] == ["example"]
    assert document["findings"] == []


def test_cli_verify_subset():
    out = io.StringIO()
    code = analyze_main(
        ["verify", "example", "--backends", "interpreted,compiled", "--format", "json"],
        out=out,
    )
    assert code == 0
    document = json.loads(out.getvalue())
    assert document["backends"] == ["interpreted", "compiled"]
    assert document["dirty"] == []


def test_cli_fail_on_threshold(monkeypatch):
    from repro.processors import registry

    monkeypatch.setitem(
        registry._REGISTRY,
        "leaky",
        registry.ProcessorEntry(
            name="leaky",
            builder=None,
            spec_factory=lambda: mini_spec(hazards=HazardSpec()),
            lint=False,
        ),
    )
    out = io.StringIO()
    assert analyze_main(["lint", "leaky", "--spec-only"], out=out) == 0
    out = io.StringIO()
    assert (
        analyze_main(["lint", "leaky", "--spec-only", "--fail-on", "warning"], out=out)
        == 1
    )
    assert "AN007" in out.getvalue()


def test_cli_rules_catalogue():
    out = io.StringIO()
    assert analyze_main(["rules"], out=out) == 0
    text = out.getvalue()
    for rule_id in RULES:
        assert rule_id in text


def test_cli_unknown_model_is_an_error():
    out = io.StringIO()
    assert analyze_main(["lint", "no-such-model"], out=out) == 1
    assert "error:" in out.getvalue()


def test_cli_requires_target():
    out = io.StringIO()
    assert analyze_main(["lint"], out=out) == 1
    assert "--all" in out.getvalue()


def test_cli_metrics_json(tmp_path):
    out = io.StringIO()
    path = tmp_path / "metrics.json"
    assert (
        analyze_main(["lint", "example", "--metrics-json", str(path)], out=out) == 0
    )
    payload = json.loads(path.read_text())
    assert payload["analyze.models_clean"]["value"] == 1
