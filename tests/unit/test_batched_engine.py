"""Lane mechanics of the batched backend (:mod:`repro.batched`).

The backend-equivalence matrix already proves a batch of one is
bit-identical to the scalar backends on every registered model; this file
covers what only multi-lane execution can show: uneven batches draining
lane by lane, per-lane workload and budget isolation, batch validation,
and how a lane behaves outside its batch.
"""

import pytest

from repro.batched import LaneBatch, LaneEngine
from repro.core import EngineOptions, SimulationError, generate_simulator
from repro.processors import build_processor
from repro.workloads import SyntheticWorkloadGenerator, get_workload


def observable(processor):
    """Everything batching may not change about one simulation."""
    stats = processor.stats
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "stalls": stats.stalls,
        "squashed": stats.squashed,
        "finished": stats.finished,
        "finish_reason": stats.finish_reason,
        "transition_firings": dict(stats.transition_firings),
        "retired_by_class": dict(stats.retired_by_class),
        "registers": [processor.register(index) for index in range(16)],
        "memory": processor.memory.statistics_summary(),
    }


def lane(model="strongarm", kernel="crc", scale=1, program=None, **options):
    processor = build_processor(
        model, engine_options=EngineOptions(backend="batched", **options)
    )
    if program is None:
        program = get_workload(kernel, scale=scale).program
    processor.load_program(program)
    return processor


def solo(model="strongarm", kernel="crc", scale=1, program=None):
    processor = build_processor(model, backend="generated")
    if program is None:
        program = get_workload(kernel, scale=scale).program
    processor.load_program(program)
    return processor


# -- lockstep equivalence ---------------------------------------------------


def test_single_lane_run_matches_scalar_generated():
    """A batch of one is the scalar generated simulation, bit for bit."""
    batched = lane()
    reference = solo()
    batched.run()
    reference.run()
    assert observable(batched) == observable(reference)


def test_uneven_batch_lanes_match_their_solo_runs():
    """Early-finishing lanes drain out without perturbing the survivors."""
    scales = (1, 2, 3)
    lanes = [lane(scale=scale) for scale in scales]
    LaneBatch([processor.engine for processor in lanes]).run()
    for scale, processor in zip(scales, lanes):
        reference = solo(scale=scale)
        reference.run()
        assert observable(processor) == observable(reference), scale


def test_lanes_keep_isolated_workloads_and_seeds():
    """Same model, different seeded programs: no cross-lane bleed."""
    programs = [
        SyntheticWorkloadGenerator(body_length=16, iterations=8, seed=seed).program()
        for seed in (11, 22, 33)
    ]
    lanes = [lane(program=program) for program in programs]
    LaneBatch([processor.engine for processor in lanes]).run()
    for program, processor in zip(programs, lanes):
        reference = solo(program=program)
        reference.run()
        assert observable(processor) == observable(reference)


# -- per-lane budgets -------------------------------------------------------


def test_per_lane_cycle_budgets_are_independent():
    lanes = [lane(), lane()]
    LaneBatch([processor.engine for processor in lanes]).run(
        max_cycles=[500, None]
    )
    capped, free = lanes
    assert capped.stats.cycles == 500
    assert capped.stats.finish_reason == "max_cycles"
    assert not capped.stats.finished
    reference = solo()
    reference.run()
    assert observable(free) == observable(reference)


def test_per_lane_instruction_budgets_match_scalar_precedence():
    batched = lane()
    reference = solo()
    LaneBatch([batched.engine]).run(max_instructions=[300])
    reference.run(max_instructions=300)
    assert observable(batched) == observable(reference)
    assert batched.stats.finish_reason == "max_instructions"


def test_scalar_budget_value_applies_to_every_lane():
    lanes = [lane(), lane(scale=2)]
    LaneBatch([processor.engine for processor in lanes]).run(max_cycles=400)
    assert [processor.stats.cycles for processor in lanes] == [400, 400]


# -- batch construction and validation --------------------------------------


def test_batch_rejects_non_lane_engines():
    scalar = solo()
    with pytest.raises(TypeError, match="LaneEngine"):
        LaneBatch([scalar.engine])


def test_batch_rejects_an_empty_lane_list():
    with pytest.raises(ValueError, match="at least one lane"):
        LaneBatch([])


def test_batch_rejects_lanes_from_different_models():
    mixed = [lane("strongarm"), lane("xscale")]
    with pytest.raises(ValueError, match="share an emitted module"):
        LaneBatch([processor.engine for processor in mixed])


def test_batch_rejects_more_lanes_than_the_module_budget():
    lanes = [lane(lanes=2) for _ in range(3)]
    with pytest.raises(ValueError, match="lane budget of 2"):
        LaneBatch([processor.engine for processor in lanes])


def test_budget_list_length_must_match_the_lane_count():
    batch = LaneBatch([lane().engine])
    with pytest.raises(ValueError, match="2 entries for 1 lanes"):
        batch.run(max_cycles=[100, 200])


def test_misaligned_lanes_refuse_to_run_in_lockstep():
    ahead, fresh = lane(), lane()
    ahead.run(max_cycles=100)
    with pytest.raises(SimulationError, match="same cycle"):
        LaneBatch([ahead.engine, fresh.engine]).run()


def test_lane_cannot_be_stepped_outside_its_batch():
    with pytest.raises(SimulationError, match="LaneBatch"):
        lane().engine.step()


# -- lifecycle --------------------------------------------------------------


def test_finished_batch_reruns_as_a_no_op():
    batch = LaneBatch([lane().engine])
    (stats,) = batch.run()
    cycles = stats.cycles
    (again,) = batch.run()
    assert again.cycles == cycles
    assert again.finished and again.finish_reason == "halt"


def test_reset_lanes_rerun_bit_identically():
    processor = lane()
    batch = LaneBatch([processor.engine])
    batch.run()
    first = observable(processor)
    wall = processor.stats.wall_time_seconds
    assert wall > 0.0
    processor.reset()
    processor.load_program(get_workload("crc", scale=1).program)
    batch.run()
    assert observable(processor) == first


def test_hand_built_net_without_fingerprint_is_emitted_fresh():
    """Nets outside the registry (no spec fingerprint) skip the disk cache."""
    from repro.core import InstructionToken, OperationClass, RCPN

    def build():
        net = RCPN("toy")
        net.add_stage("A", capacity=1, delay=1)
        net.add_operation_class(OperationClass("op", symbols={}))
        gen = net.add_subnet("gen")
        sub = net.add_subnet("op", opclasses=("op",))
        place_a = net.add_place("A", sub, entry=True)
        place_end = net.add_place("end", sub)
        state = {"emitted": 0}

        def fetch_guard(_t, _ctx):
            return state["emitted"] < 3

        def fetch_action(_t, ctx):
            state["emitted"] += 1
            ctx.emit(InstructionToken(instr=state["emitted"], opclass="op"))
            if state["emitted"] >= 3:
                ctx.stop("done")

        net.add_transition("fetch", gen, guard=fetch_guard, action=fetch_action,
                           capacity_stages=["A"])
        net.add_transition("drain", sub, source=place_a, target=place_end)
        return net

    interpreted, _ = generate_simulator(build(), EngineOptions(backend="interpreted"))
    batched, _ = generate_simulator(build(), EngineOptions(backend="batched"))
    assert isinstance(batched, LaneEngine)
    assert batched.codegen_status == "uncached"
    reference = interpreted.run()
    stats = batched.run()
    assert (stats.cycles, stats.finish_reason, dict(stats.transition_firings)) == (
        reference.cycles,
        reference.finish_reason,
        dict(reference.transition_firings),
    )


def test_batch_wall_time_is_attributed_across_lanes():
    lanes = [lane(), lane(scale=2)]
    batch = LaneBatch([processor.engine for processor in lanes])
    batch.run()
    walls = [processor.stats.wall_time_seconds for processor in lanes]
    assert all(wall > 0.0 for wall in walls)
    # Attribution is proportional to cycles: the longer lane gets more.
    assert walls[1] > walls[0]
