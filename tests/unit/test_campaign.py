"""Unit tests of the campaign subsystem: spec, planner, store, aggregation, CLI.

The end-to-end worker-pool contract (bit-identical statistics, zero
re-execution on a warm store) lives in
``tests/integration/test_campaign_acceptance.py``; these tests pin the
pieces: fingerprint composition and sensitivity, deterministic grid
expansion with ISA-subset filtering, JSON-lines persistence, the
aggregation tables and the command-line interface.
"""

import io
import json

import pytest

from repro.campaign import (
    ALL,
    CampaignError,
    CampaignSpec,
    EngineVariant,
    ResultStore,
    RunResult,
    RunSpec,
    cpi_table,
    plan_campaign,
    run_campaign,
    speedup_table,
    summarize,
    throughput_table,
    to_csv,
    to_json,
)
from repro.campaign.cli import main as cli_main
from repro.core import EngineOptions
from repro.processors import processor_names, strongarm_spec
from repro.workloads import workload_names


# ---------------------------------------------------------------------------
# CampaignSpec validation and interchange
# ---------------------------------------------------------------------------


class TestCampaignSpec:
    def test_validate_accepts_a_sensible_grid(self):
        spec = CampaignSpec(
            name="ok",
            processors=("strongarm",),
            workloads=("crc",),
            engines=("interpreted", "compiled"),
        )
        assert spec.validate()

    @pytest.mark.parametrize(
        "kwargs,needle",
        [
            (dict(name=""), "no name"),
            (dict(name="x", scales=(0,)), "bad scale"),
            (dict(name="x", repeats=0), "bad repeats"),
            (dict(name="x", engines=("turbo",)), "unknown engine backend"),
            (dict(name="x", processors=(42,)), "bad processor-axis entry"),
            (
                dict(
                    name="x",
                    engines=(
                        EngineVariant("same", EngineOptions()),
                        EngineVariant("same", EngineOptions(backend="compiled")),
                    ),
                ),
                "duplicate engine-variant labels",
            ),
        ],
    )
    def test_validate_rejects_bad_specs(self, kwargs, needle):
        with pytest.raises(CampaignError, match=needle):
            CampaignSpec(**kwargs).validate()

    def test_dict_round_trip_preserves_the_grid(self):
        spec = CampaignSpec(
            name="round-trip",
            processors=("strongarm", "xscale"),
            workloads=("crc",),
            scales=(1, 2),
            engines=(
                "interpreted",
                EngineVariant("no-sort", EngineOptions(use_sorted_transitions=False)),
            ),
            max_cycles=50_000,
            repeats=2,
            description="documented",
        )
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert plan_campaign(rebuilt).fingerprints == plan_campaign(spec).fingerprints
        assert rebuilt.description == "documented"

    def test_enumeration_only_spec_is_valid(self):
        from repro.campaign import campaign_processors

        axis_only = CampaignSpec(name="axis", processors=(ALL,), workloads=())
        assert axis_only.validate()
        assert campaign_processors(axis_only) == processor_names()

    def test_to_dict_rejects_inline_pipeline_specs(self):
        spec = CampaignSpec(name="inline", processors=(strongarm_spec(),), workloads=("crc",))
        with pytest.raises(CampaignError, match="inline PipelineSpec"):
            spec.to_dict()


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


class TestPlanner:
    def test_full_grid_crosses_every_axis_and_filters_isa_subsets(self):
        spec = CampaignSpec(
            name="grid", processors=(ALL,), workloads=(ALL,), engines=("interpreted",)
        )
        plan = plan_campaign(spec)
        # The example model supports three of the six kernels; everything
        # else is full-ISA.
        expected = (len(processor_names()) - 1) * len(workload_names()) + 3
        assert len(plan.runs) == expected
        assert len(plan.skipped) == 3
        assert all(reason for _, _, reason in plan.skipped)
        assert len(set(plan.run_ids())) == len(plan.runs)

    def test_grid_order_is_deterministic(self):
        spec = CampaignSpec(
            name="order",
            processors=("strongarm", "arm7-mini"),
            workloads=("crc", "compress"),
            scales=(1, 2),
            engines=("interpreted", "compiled"),
            repeats=2,
        )
        assert plan_campaign(spec).run_ids() == plan_campaign(spec).run_ids()
        assert plan_campaign(spec).runs[0].run_id == "strongarm/crc@1/interpreted"
        assert len(plan_campaign(spec).runs) == 2 * 2 * 2 * 2 * 2

    def test_explicit_runs_are_appended(self):
        extra = RunSpec(processor="xscale", workload="go", scale=3, engine="compiled")
        spec = CampaignSpec(
            name="explicit", processors=("strongarm",), workloads=("crc",), runs=(extra,)
        )
        plan = plan_campaign(spec)
        assert plan.runs[-1] is extra
        assert len(plan.runs) == 2

    def test_zero_run_plans_are_rejected(self):
        with pytest.raises(CampaignError, match="zero runs"):
            plan_campaign(CampaignSpec(name="empty", processors=(ALL,), workloads=()))

    def test_duplicate_runs_are_rejected(self):
        duplicate = RunSpec(processor="strongarm", workload="crc")
        spec = CampaignSpec(
            name="dup", processors=("strongarm",), workloads=("crc",), runs=(duplicate,)
        )
        with pytest.raises(CampaignError, match="duplicate run"):
            plan_campaign(spec)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestFingerprints:
    def test_fingerprint_is_stable(self):
        run = RunSpec(processor="strongarm", workload="crc", scale=2, engine="compiled")
        assert run.fingerprint() == run.fingerprint()
        clone = RunSpec(processor="strongarm", workload="crc", scale=2, engine="compiled")
        assert clone.fingerprint() == run.fingerprint()

    @pytest.mark.parametrize(
        "variation",
        [
            dict(workload="compress"),
            dict(scale=2),
            dict(engine="compiled"),
            dict(max_cycles=1000),
            dict(max_instructions=1000),
            dict(repeat=1),
            dict(processor="xscale"),
        ],
    )
    def test_fingerprint_changes_with_every_axis(self, variation):
        base = dict(processor="strongarm", workload="crc", scale=1, engine="interpreted")
        assert (
            RunSpec(**dict(base, **variation)).fingerprint()
            != RunSpec(**base).fingerprint()
        )

    def test_fingerprint_is_memoized_per_instance(self):
        run = RunSpec(processor="strongarm", workload="crc")
        first = run.fingerprint()
        assert run.fingerprint() is first  # served from the memo
        assert RunSpec(processor="strongarm", workload="crc").fingerprint() == first

    def test_engine_options_feed_the_fingerprint_but_labels_do_not(self):
        base = RunSpec(processor="strongarm", workload="crc")
        relabelled = RunSpec(
            processor="strongarm",
            workload="crc",
            engine=EngineVariant("renamed", EngineOptions()),
        )
        assert relabelled.fingerprint() == base.fingerprint()
        reoptioned = RunSpec(
            processor="strongarm",
            workload="crc",
            engine=EngineVariant("renamed", EngineOptions(use_sorted_transitions=False)),
        )
        assert reoptioned.fingerprint() != base.fingerprint()

    def test_inline_spec_matches_registry_name(self):
        # "strongarm" resolves to the same PipelineSpec content, so the
        # store recognises the runs as the same experiment.
        named = RunSpec(processor="strongarm", workload="crc")
        inline = RunSpec(
            processor="inline-strongarm", workload="crc", processor_spec=strongarm_spec()
        )
        assert inline.fingerprint() == named.fingerprint()

    def test_batch_width_does_not_change_the_fingerprint(self):
        """``lanes`` is an execution detail: widening a batched campaign
        must keep every stored result cached."""
        narrow = RunSpec(
            processor="strongarm",
            workload="crc",
            engine=EngineVariant("batched", EngineOptions(backend="batched", lanes=2)),
        )
        wide = RunSpec(
            processor="strongarm",
            workload="crc",
            engine=EngineVariant("batched", EngineOptions(backend="batched", lanes=16)),
        )
        assert narrow.fingerprint() == wide.fingerprint()
        scalar = RunSpec(processor="strongarm", workload="crc", engine="generated")
        assert narrow.fingerprint() != scalar.fingerprint()


# ---------------------------------------------------------------------------
# ResultStore
# ---------------------------------------------------------------------------


def _result(fingerprint="f" * 64, cycles=100, **overrides):
    fields = dict(
        fingerprint=fingerprint,
        campaign="test",
        run_id="strongarm/crc@1/interpreted",
        processor="strongarm",
        workload="crc",
        scale=1,
        engine="interpreted",
        backend="interpreted",
        repeat=0,
        cycles=cycles,
        instructions=50,
        final_r0=7,
        finish_reason="halt",
        wall_seconds=0.5,
        stats={"cycles": cycles},
        generation={"schedule_cache": "miss"},
    )
    fields.update(overrides)
    return RunResult(**fields)


class TestResultStore:
    def test_round_trip_through_disk(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = _result()
        store.append(result)

        reloaded = ResultStore(tmp_path / "store")
        assert result.fingerprint in reloaded
        loaded = reloaded.get(result.fingerprint)
        assert loaded.cycles == result.cycles
        assert loaded.stats == result.stats
        assert loaded.cached is False

    def test_last_write_wins_on_duplicate_fingerprints(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.append(_result(cycles=100))
        store.append(_result(cycles=200))
        reloaded = ResultStore(tmp_path / "store")
        assert len(reloaded) == 1
        assert reloaded.get("f" * 64).cycles == 200

    def test_results_keep_first_position_with_last_wins_values(self, tmp_path):
        # The documented order contract: duplicate fingerprints update the
        # record in place (values from the last write) without moving the
        # fingerprint from its first-appended position.
        store = ResultStore(tmp_path / "store")
        first = _result(fingerprint="a" * 64, cycles=100)
        second = _result(fingerprint="b" * 64, cycles=200, run_id="other")
        store.append(first)
        store.append(second)
        store.append(_result(fingerprint="a" * 64, cycles=999))
        reloaded = ResultStore(tmp_path / "store")
        assert reloaded.fingerprints() == ("a" * 64, "b" * 64)
        assert [result.cycles for result in reloaded.results()] == [999, 200]

    def test_missing_directory_reads_as_empty(self, tmp_path):
        store = ResultStore(tmp_path / "nowhere")
        assert len(store) == 0
        assert store.results() == ()

    def test_cached_flag_is_never_persisted(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = _result()
        result.cached = True
        store.append(result)
        shards = list((tmp_path / "store" / "shards").glob("*.jsonl"))
        assert len(shards) == 1
        assert '"cached"' not in shards[0].read_text()


# ---------------------------------------------------------------------------
# Runner (in-process path; the pool path is integration-tested)
# ---------------------------------------------------------------------------


TINY = CampaignSpec(
    name="tiny",
    processors=("arm7-mini",),
    workloads=("crc",),
    engines=("interpreted",),
)


class TestRunner:
    def test_serial_campaign_persists_and_then_serves_from_store(self, tmp_path):
        seen = []
        report = run_campaign(
            TINY, store=tmp_path / "store", max_workers=1, progress=seen.append
        )
        assert report.executed == 1 and report.cached == 0
        assert len(seen) == 1 and not seen[0].cached
        assert report.results[0].finish_reason == "halt"
        assert report.results[0].generation["backend"] == "interpreted"

        again = run_campaign(TINY, store=tmp_path / "store", max_workers=1)
        assert again.executed == 0 and again.cached == 1
        assert again.results[0].cached
        assert again.results[0].cycles == report.results[0].cycles

    def test_store_path_accepts_plain_strings(self, tmp_path):
        report = run_campaign(TINY, store=str(tmp_path / "store"), max_workers=1)
        assert list((tmp_path / "store" / "shards").glob("*.jsonl"))
        assert report.store_path == str(tmp_path / "store")

    def test_memory_only_campaign_runs_without_a_store(self):
        report = run_campaign(TINY, store=None, max_workers=1)
        assert report.executed == 1
        assert report.store_path is None

    def test_plan_rejects_explicit_runs_with_unknown_names(self):
        from repro.core.exceptions import UnknownNameError

        broken = CampaignSpec(
            name="broken",
            processors=("arm7-mini",),
            workloads=("crc",),
            runs=(RunSpec(processor="arm7-mini", workload="no-such-kernel"),),
        )
        with pytest.raises(UnknownNameError, match="no-such-kernel"):
            plan_campaign(broken)

    def test_failing_run_raises_a_collected_campaign_error(self, tmp_path):
        from repro.describe import PipelineSpec, StageSpec, linear_path

        # Fingerprints fine (pure data) but blows up at elaboration time on
        # the worker: the hook name does not exist in the ARM semantics.
        bad_model = PipelineSpec(
            name="bad-hooks",
            stages=(StageSpec("FD"), StageSpec("EX")),
            paths=(
                linear_path("alu", ("FD", "EX"), hooks={"end": "no.such.hook"}),
            ),
        )
        broken = CampaignSpec(
            name="broken",
            processors=("arm7-mini",),
            workloads=("crc",),
            engines=("interpreted",),
            runs=(
                RunSpec(processor="bad-hooks", workload="crc", processor_spec=bad_model),
            ),
        )
        with pytest.raises(CampaignError, match="bad-hooks"):
            run_campaign(broken, store=tmp_path / "store", max_workers=1)
        # The good run completed and was persisted before the raise, and the
        # failing run landed as a "failed" record with its traceback.
        store = ResultStore(tmp_path / "store")
        assert len(store) == 2
        kinds = {result.run_id: result for result in store.results()}
        assert kinds["arm7-mini/crc@1/interpreted"].ok
        failed = kinds["bad-hooks/crc@1/interpreted"]
        assert not failed.ok
        assert failed.finish_reason == "error"
        assert "no.such.hook" in failed.error_details

    def test_budgeted_run_stops_at_the_cycle_budget(self):
        budgeted = CampaignSpec(
            name="budget",
            processors=("arm7-mini",),
            workloads=("crc",),
            engines=("interpreted",),
            max_cycles=100,
        )
        report = run_campaign(budgeted, store=None, max_workers=1)
        assert report.results[0].cycles == 100
        assert report.results[0].finish_reason != "halt"


class TestBatchedCampaigns:
    GRID = dict(processors=("arm7-mini",), workloads=("crc", "compress"), scales=(1,))

    def test_batched_rows_match_scalar_generated_rows(self):
        spec = CampaignSpec(name="b", engines=("generated", "batched"), **self.GRID)
        report = run_campaign(spec, store=None, max_workers=1)
        rows = {
            (result.workload, result.engine): result for result in report.results
        }
        for workload in self.GRID["workloads"]:
            generated = rows[(workload, "generated")]
            batched = rows[(workload, "batched")]
            assert batched.cycles == generated.cycles
            assert batched.instructions == generated.instructions
            assert batched.final_r0 == generated.final_r0
            assert batched.memory == generated.memory
            assert batched.stats["retired_by_class"] == (
                generated.stats["retired_by_class"]
            )

    def test_same_module_runs_share_one_lane_batch(self, monkeypatch):
        """Pending batched runs of one model execute as a single batch."""
        from repro.campaign import runner as runner_module

        batches = []
        original = runner_module.execute_batch

        def spy(runs, campaign=""):
            batches.append([run.run_id for run in runs])
            return original(runs, campaign=campaign)

        monkeypatch.setattr(runner_module, "execute_batch", spy)
        spec = CampaignSpec(name="b", engines=("batched",), **self.GRID)
        report = run_campaign(spec, store=None, max_workers=1)
        assert report.executed == 2
        assert len(batches) == 1 and len(batches[0]) == 2

    def test_batch_width_chunks_oversized_groups(self, monkeypatch):
        from repro.campaign import runner as runner_module

        batches = []
        original = runner_module.execute_batch

        def spy(runs, campaign=""):
            batches.append(len(runs))
            return original(runs, campaign=campaign)

        monkeypatch.setattr(runner_module, "execute_batch", spy)
        narrow = EngineVariant("batched", EngineOptions(backend="batched", lanes=1))
        spec = CampaignSpec(name="b", engines=(narrow,), **self.GRID)
        run_campaign(spec, store=None, max_workers=1)
        assert batches == [1, 1]

    def test_widening_a_batched_campaign_stays_fully_cached(self, tmp_path):
        narrow = EngineVariant("batched", EngineOptions(backend="batched", lanes=1))
        cold = run_campaign(
            CampaignSpec(name="b", engines=(narrow,), **self.GRID),
            store=tmp_path / "store",
            max_workers=1,
        )
        assert cold.executed == 2 and cold.cached == 0
        wide = EngineVariant("batched", EngineOptions(backend="batched", lanes=8))
        warm = run_campaign(
            CampaignSpec(name="b", engines=(wide,), **self.GRID),
            store=tmp_path / "store",
            max_workers=1,
        )
        assert warm.executed == 0 and warm.cached == 2

    def test_batched_runs_respect_campaign_budgets(self):
        spec = CampaignSpec(
            name="b",
            engines=("batched",),
            processors=("arm7-mini",),
            workloads=("crc", "compress"),
            max_cycles=50,  # far below the halt point: finish_reason max_cycles
        )
        report = run_campaign(spec, store=None, max_workers=1)
        assert [result.finish_reason for result in report.results] == [
            "max_cycles",
            "max_cycles",
        ]


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class TestAggregation:
    def _results(self):
        return [
            _result(
                fingerprint="a" * 64,
                cycles=100,
                wall_seconds=1.0,
                run_id="strongarm/crc@1/interpreted",
            ),
            _result(
                fingerprint="b" * 64,
                cycles=100,
                wall_seconds=0.25,
                engine="compiled",
                backend="compiled",
                run_id="strongarm/crc@1/compiled",
            ),
        ]

    def test_summarize_reduces_repeats_and_keeps_simulated_quantities(self):
        results = self._results() + [
            _result(fingerprint="c" * 64, cycles=100, wall_seconds=2.0, repeat=1)
        ]
        rows = summarize(results)
        by_engine = {row["engine"]: row for row in rows}
        assert by_engine["interpreted"]["runs"] == 2
        assert by_engine["interpreted"]["cycles"] == 100
        # Best throughput: the 1.0s repeat beats the 2.0s repeat.
        assert by_engine["interpreted"]["best_kcycles_per_sec"] == pytest.approx(0.1)
        assert by_engine["interpreted"]["mean_wall_seconds"] == pytest.approx(1.5)

    def test_multi_scale_results_summarize_per_scale(self):
        # Regression: different scales are different simulations; the
        # default grouping must keep them apart, not flag them as
        # non-deterministic.
        results = [
            _result(fingerprint="a" * 64, cycles=100, scale=1),
            _result(
                fingerprint="b" * 64,
                cycles=200,
                scale=2,
                run_id="strongarm/crc@2/interpreted",
            ),
        ]
        rows = summarize(results)
        assert {row["scale"]: row["cycles"] for row in rows} == {1: 100, 2: 200}
        assert {row["scale"] for row in cpi_table(results)} == {1, 2}

    def test_summarize_rejects_non_deterministic_groups(self):
        results = [
            _result(fingerprint="a" * 64, cycles=100),
            _result(fingerprint="b" * 64, cycles=101, repeat=1),
        ]
        with pytest.raises(ValueError, match="non-deterministic"):
            summarize(results)

    def test_speedup_table_computes_the_figure10_ratio(self):
        rows = speedup_table(self._results())
        assert len(rows) == 1
        assert rows[0]["speedup"] == pytest.approx(4.0)

    def test_speedup_table_rejects_cycle_disagreement(self):
        results = self._results()
        results[1].cycles = 999
        with pytest.raises(ValueError, match="disagree on simulated cycles"):
            speedup_table(results)

    def _throughput_results(self):
        return [
            _result(
                fingerprint="a" * 64,
                cycles=100,
                wall_seconds=1.0,
                engine="generated",
                backend="generated",
                run_id="strongarm/crc@1/generated",
            ),
            _result(
                fingerprint="b" * 64,
                cycles=100,
                wall_seconds=0.5,
                engine="batched",
                backend="batched",
                run_id="strongarm/crc@1/batched",
            ),
        ]

    def test_throughput_table_computes_rows_per_host_second(self):
        rows = throughput_table(self._throughput_results())
        assert len(rows) == 1
        assert rows[0]["generated_rows_per_sec"] == pytest.approx(1.0)
        assert rows[0]["batched_rows_per_sec"] == pytest.approx(2.0)
        assert rows[0]["throughput_ratio"] == pytest.approx(2.0)

    def test_throughput_table_rejects_cycle_disagreement(self):
        results = self._throughput_results()
        results[1].cycles = 999
        with pytest.raises(ValueError, match="disagree on simulated cycles"):
            throughput_table(results)

    def test_throughput_table_skips_cells_missing_either_variant(self):
        assert throughput_table(self._throughput_results()[:1]) == []

    def test_cpi_table_shape(self):
        rows = cpi_table(self._results())
        assert {row["engine"] for row in rows} == {"interpreted", "compiled"}
        assert all(row["cpi"] == pytest.approx(2.0) for row in rows)

    def test_csv_and_json_export(self, tmp_path):
        results = self._results()
        count = to_csv(results, tmp_path / "out.csv")
        assert count == 2
        header = (tmp_path / "out.csv").read_text().splitlines()[0]
        assert "processor" in header and "fingerprint" in header

        text = to_json(results, tmp_path / "out.json")
        payload = json.loads(text)
        assert len(payload) == 2
        assert json.loads((tmp_path / "out.json").read_text()) == payload

    def test_export_of_nothing_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="no results"):
            to_csv([], tmp_path / "out.csv")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    GRID = [
        "--name",
        "cli",
        "--processors",
        "arm7-mini",
        "--workloads",
        "crc",
        "--engines",
        "interpreted",
    ]

    def test_run_status_report_round_trip(self, tmp_path):
        store = str(tmp_path / "store")
        out = io.StringIO()
        assert cli_main(["run", *self.GRID, "--store", store, "--max-workers", "1"], out) == 0
        assert "1 executed" in out.getvalue()

        out = io.StringIO()
        assert cli_main(["status", *self.GRID, "--store", store], out) == 0
        assert "0 pending" in out.getvalue()

        out = io.StringIO()
        csv_path = str(tmp_path / "rows.csv")
        assert cli_main(["report", "--store", store, "--csv", csv_path], out) == 0
        assert "arm7-mini" in out.getvalue()
        assert "processor" in (tmp_path / "rows.csv").read_text()

    def test_expect_all_cached_distinguishes_cold_and_warm_stores(self, tmp_path):
        store = str(tmp_path / "store")
        cold = cli_main(
            ["run", *self.GRID, "--store", store, "--max-workers", "1", "--expect-all-cached"],
            io.StringIO(),
        )
        assert cold == 1  # executed a run although everything was expected cached
        warm = cli_main(
            ["run", *self.GRID, "--store", store, "--max-workers", "1", "--expect-all-cached"],
            io.StringIO(),
        )
        assert warm == 0

    def test_status_reports_pending_runs_with_exit_code(self, tmp_path):
        out = io.StringIO()
        code = cli_main(["status", *self.GRID, "--store", str(tmp_path / "empty")], out)
        assert code == 2
        assert "pending arm7-mini/crc@1/interpreted" in out.getvalue()

    def test_report_on_an_empty_store_fails_cleanly(self, tmp_path):
        out = io.StringIO()
        assert cli_main(["report", "--store", str(tmp_path / "empty")], out) == 1
        assert "no results" in out.getvalue()

    def test_spec_file_round_trip(self, tmp_path):
        spec_path = tmp_path / "campaign.json"
        spec_path.write_text(
            json.dumps(
                CampaignSpec(
                    name="from-file",
                    processors=("arm7-mini",),
                    workloads=("crc",),
                    engines=("interpreted",),
                ).to_dict()
            )
        )
        out = io.StringIO()
        code = cli_main(
            [
                "run",
                "--spec",
                str(spec_path),
                "--store",
                str(tmp_path / "store"),
                "--max-workers",
                "1",
            ],
            out,
        )
        assert code == 0
        assert "'from-file'" in out.getvalue()

    @pytest.mark.parametrize("command", ["run", "status"])
    def test_bad_processor_name_fails_with_suggestion(self, tmp_path, command):
        out = io.StringIO()
        code = cli_main(
            [
                command,
                "--processors", "strongam",
                "--workloads", "crc",
                "--store", str(tmp_path / "store"),
            ],
            out,
        )
        assert code == 1
        message = out.getvalue()
        assert "unknown processor 'strongam'" in message
        assert "did you mean 'strongarm'" in message
        assert "Traceback" not in message

    @pytest.mark.parametrize("command", ["run", "status"])
    def test_bad_workload_name_fails_with_suggestion(self, tmp_path, command):
        out = io.StringIO()
        code = cli_main(
            [
                command,
                "--processors", "strongarm",
                "--workloads", "blowfsh",
                "--store", str(tmp_path / "store"),
            ],
            out,
        )
        assert code == 1
        message = out.getvalue()
        assert "unknown workload 'blowfsh'" in message
        assert "did you mean 'blowfish'" in message

    def test_bad_name_inside_spec_file_also_gets_suggestions(self, tmp_path):
        spec_path = tmp_path / "campaign.json"
        spec_path.write_text(
            json.dumps({"name": "typo", "processors": ["xsale"], "workloads": ["crc"]})
        )
        out = io.StringIO()
        code = cli_main(
            ["run", "--spec", str(spec_path), "--store", str(tmp_path / "store")], out
        )
        assert code == 1
        assert "did you mean 'xscale'" in out.getvalue()

    def test_missing_spec_file_fails_cleanly(self, tmp_path):
        out = io.StringIO()
        code = cli_main(
            ["run", "--spec", str(tmp_path / "nope.json"), "--store", str(tmp_path / "s")],
            out,
        )
        assert code == 1
        assert "cannot read --spec file" in out.getvalue()

    def test_bad_engine_name_fails_with_suggestion(self, tmp_path):
        out = io.StringIO()
        code = cli_main(
            [
                "run",
                "--processors", "strongarm",
                "--workloads", "crc",
                "--engines", "batchd",
                "--store", str(tmp_path / "store"),
            ],
            out,
        )
        assert code == 1
        message = out.getvalue()
        assert "unknown engine backend 'batchd'" in message
        assert "did you mean 'batched'" in message
        assert "Traceback" not in message

    def test_engines_flag_accepts_batched(self, tmp_path):
        out = io.StringIO()
        code = cli_main(
            [
                "run",
                "--processors", "arm7-mini",
                "--workloads", "crc",
                "--engines", "batched",
                "--store", str(tmp_path / "store"),
                "--max-workers", "1",
            ],
            out,
        )
        assert code == 0
        assert "arm7-mini" in out.getvalue()

    def test_non_integer_scales_fail_cleanly(self, tmp_path):
        out = io.StringIO()
        code = cli_main(
            [
                "run",
                "--processors", "strongarm",
                "--workloads", "crc",
                "--scales", "x2",
                "--store", str(tmp_path / "store"),
            ],
            out,
        )
        assert code == 1
        assert "bad --scales entry 'x2'" in out.getvalue()
