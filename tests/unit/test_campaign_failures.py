"""Failure isolation in the campaign runner (and its CLI surface).

Failures are first-class: a failing run is retried with a budget
(``CampaignSpec.max_retries``), a failing lane batch is re-split into
scalar runs so one poisoned lane cannot take its siblings down, runs
that exhaust the budget persist as ``"failed"`` store records (visible
in ``status``/``report``, never served as cache hits), and
``keep_going`` finishes the whole grid before the collected
:class:`CampaignError` is raised.
"""

import io

import pytest

from repro.campaign import (
    CampaignError,
    CampaignSpec,
    ResultStore,
    failure_rows,
    run_campaign,
)
from repro.campaign import runner as runner_module
from repro.campaign.cli import main as cli_main
from repro.observe.metrics import snapshot_value


def _spec(workloads=("crc",), max_retries=0, **kwargs):
    return CampaignSpec(
        name="faulty",
        processors=("arm7-mini",),
        workloads=workloads,
        engines=("interpreted",),
        max_retries=max_retries,
        retry_backoff_seconds=0.0,  # tests must not sleep
        **kwargs,
    )


class _FlakyExecutor:
    """Delegate to the real ``execute_run`` after ``failures`` induced errors."""

    def __init__(self, real, fail_run_ids, failures):
        self.real = real
        self.fail_run_ids = set(fail_run_ids)
        self.budget = {run_id: failures for run_id in self.fail_run_ids}
        self.calls = []

    def __call__(self, run, campaign=""):
        self.calls.append(run.run_id)
        if self.budget.get(run.run_id, 0) > 0:
            self.budget[run.run_id] -= 1
            raise RuntimeError("injected fault in %s" % run.run_id)
        return self.real(run, campaign=campaign)


@pytest.fixture
def flaky(monkeypatch):
    def install(fail_run_ids, failures):
        executor = _FlakyExecutor(
            runner_module.execute_run, fail_run_ids, failures
        )
        monkeypatch.setattr(runner_module, "execute_run", executor)
        return executor

    return install


class TestRetries:
    def test_transient_failure_is_retried_and_succeeds(self, flaky, tmp_path):
        executor = flaky(["arm7-mini/crc@1/interpreted"], failures=2)
        report = run_campaign(
            _spec(max_retries=2), store=tmp_path / "store", max_workers=1
        )
        assert report.executed == 1
        assert report.results[0].ok
        assert executor.calls.count("arm7-mini/crc@1/interpreted") == 3
        assert snapshot_value(report.metrics, "campaign.run.retries") == 2
        assert snapshot_value(report.metrics, "campaign.run.failures") == 0

    def test_retry_budget_is_a_hard_ceiling(self, flaky, tmp_path):
        executor = flaky(["arm7-mini/crc@1/interpreted"], failures=99)
        with pytest.raises(CampaignError, match="injected fault"):
            run_campaign(_spec(max_retries=2), store=tmp_path / "store", max_workers=1)
        assert executor.calls.count("arm7-mini/crc@1/interpreted") == 3  # 1 + 2 retries

    def test_exhausted_run_persists_a_failed_record(self, flaky, tmp_path):
        flaky(["arm7-mini/crc@1/interpreted"], failures=99)
        with pytest.raises(CampaignError):
            run_campaign(_spec(max_retries=1), store=tmp_path / "store", max_workers=1)
        store = ResultStore(tmp_path / "store")
        assert len(store) == 1
        failed = store.results()[0]
        assert not failed.ok
        assert failed.kind == "failed"
        assert failed.attempts == 2
        assert "injected fault" in failed.error
        assert "RuntimeError" in failed.error_details  # full traceback rides along

    def test_failed_store_record_is_retried_not_served(self, flaky, tmp_path):
        """The acceptance scenario: the retry succeeds after the fault clears."""
        executor = flaky(["arm7-mini/crc@1/interpreted"], failures=99)
        with pytest.raises(CampaignError):
            run_campaign(_spec(), store=tmp_path / "store", max_workers=1)

        executor.budget.clear()  # the fault clears
        clear = run_campaign(_spec(), store=tmp_path / "store", max_workers=1)
        assert clear.executed == 1 and clear.cached == 0  # retried, not served
        assert clear.results[0].ok
        assert (
            snapshot_value(clear.metrics, "campaign.store.failed_retried") == 1
        )

        # The success overwrote the failure row: the store now serves it.
        warm = run_campaign(_spec(), store=tmp_path / "store", max_workers=1)
        assert warm.executed == 0 and warm.cached == 1

    def test_failed_store_record_retry_uses_cleared_executor(self, flaky, tmp_path):
        executor = flaky(["arm7-mini/crc@1/interpreted"], failures=1)
        with pytest.raises(CampaignError):
            run_campaign(_spec(), store=tmp_path / "store", max_workers=1)
        # Second invocation: the injected budget is spent, the run succeeds.
        clear = run_campaign(_spec(), store=tmp_path / "store", max_workers=1)
        assert clear.results[0].ok
        assert executor.calls.count("arm7-mini/crc@1/interpreted") == 2


class TestKeepGoing:
    def test_keep_going_finishes_the_grid_before_raising(self, flaky, tmp_path):
        flaky(["arm7-mini/crc@1/interpreted"], failures=99)
        spec = _spec(workloads=("crc", "compress", "adpcm"))
        with pytest.raises(CampaignError, match=r"1 run\(s\) failed"):
            run_campaign(
                spec, store=tmp_path / "store", max_workers=1, keep_going=True
            )
        store = ResultStore(tmp_path / "store")
        by_run = {result.run_id: result for result in store.results()}
        # Every sibling completed and persisted despite the poisoned run.
        assert by_run["arm7-mini/compress@1/interpreted"].ok
        assert by_run["arm7-mini/adpcm@1/interpreted"].ok
        assert not by_run["arm7-mini/crc@1/interpreted"].ok

    def test_default_stops_at_the_first_final_failure(self, flaky, tmp_path):
        executor = flaky(["arm7-mini/crc@1/interpreted"], failures=99)
        spec = _spec(workloads=("crc", "compress", "adpcm"))
        with pytest.raises(CampaignError, match="keep_going"):
            run_campaign(spec, store=tmp_path / "store", max_workers=1)
        # crc is the first unit; the failure stopped the serial loop there.
        assert "arm7-mini/compress@1/interpreted" not in executor.calls

    def test_keep_going_collects_every_failure(self, flaky, tmp_path):
        flaky(
            ["arm7-mini/crc@1/interpreted", "arm7-mini/adpcm@1/interpreted"],
            failures=99,
        )
        spec = _spec(workloads=("crc", "compress", "adpcm"))
        with pytest.raises(CampaignError, match=r"2 run\(s\) failed"):
            run_campaign(
                spec, store=tmp_path / "store", max_workers=1, keep_going=True
            )
        rows = failure_rows(ResultStore(tmp_path / "store"))
        assert {row["workload"] for row in rows} == {"crc", "adpcm"}
        assert all(row["error"].startswith("RuntimeError") for row in rows)


class TestBatchResplit:
    def test_poisoned_batch_is_resplit_and_siblings_survive(
        self, monkeypatch, tmp_path
    ):
        """A failing multi-lane batch re-runs as scalars; only the poisoned
        lane fails, without charging the siblings' retry budget."""
        real_batch = runner_module.execute_batch
        batch_sizes = []

        def poisoned_batch(runs, campaign=""):
            batch_sizes.append(len(runs))
            if len(runs) > 1:
                raise RuntimeError("poisoned lane takes the whole batch down")
            return real_batch(runs, campaign=campaign)

        monkeypatch.setattr(runner_module, "execute_batch", poisoned_batch)
        spec = CampaignSpec(
            name="batched-faulty",
            processors=("arm7-mini",),
            workloads=("crc", "compress"),
            engines=("batched",),
            retry_backoff_seconds=0.0,
        )
        report = run_campaign(spec, store=tmp_path / "store", max_workers=1)
        # One 2-lane batch failed, then two scalar batches succeeded —
        # with max_retries=0: the re-split is isolation, not a retry.
        assert batch_sizes == [2, 1, 1]
        assert report.executed == 2
        assert all(result.ok for result in report.results)
        assert (
            snapshot_value(report.metrics, "campaign.batch.resplit_runs") == 2
        )

    def test_resplit_scalar_failure_still_respects_the_budget(
        self, monkeypatch, tmp_path
    ):
        real_batch = runner_module.execute_batch

        def poisoned(runs, campaign=""):
            if any(run.workload == "crc" for run in runs):
                raise RuntimeError("crc lane is poisoned")
            return real_batch(runs, campaign=campaign)

        monkeypatch.setattr(runner_module, "execute_batch", poisoned)
        spec = CampaignSpec(
            name="batched-faulty",
            processors=("arm7-mini",),
            workloads=("crc", "compress"),
            engines=("batched",),
            retry_backoff_seconds=0.0,
        )
        with pytest.raises(CampaignError, match="crc lane is poisoned"):
            run_campaign(
                spec, store=tmp_path / "store", max_workers=1, keep_going=True
            )
        store = ResultStore(tmp_path / "store")
        by_run = {result.run_id: result for result in store.results()}
        assert by_run["arm7-mini/compress@1/batched"].ok  # sibling survived
        assert not by_run["arm7-mini/crc@1/batched"].ok


class TestSpecKnobs:
    def test_retry_knobs_round_trip_through_dict(self):
        spec = _spec(max_retries=3)
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt.max_retries == 3
        assert rebuilt.retry_backoff_seconds == 0.0

    @pytest.mark.parametrize(
        "kwargs,needle",
        [
            (dict(max_retries=-1), "bad max_retries"),
            (dict(max_retries=1.5), "bad max_retries"),
            (dict(retry_backoff_seconds=-0.1), "bad retry_backoff_seconds"),
        ],
    )
    def test_bad_retry_knobs_are_rejected(self, kwargs, needle):
        spec = CampaignSpec(name="x", processors=("strongarm",), **kwargs)
        with pytest.raises(CampaignError, match=needle):
            spec.validate()

    def test_retry_knobs_do_not_change_fingerprints(self, tmp_path):
        from repro.campaign import plan_campaign

        lax = _spec(max_retries=0)
        strict = _spec(max_retries=5)
        assert (
            plan_campaign(lax).fingerprints == plan_campaign(strict).fingerprints
        )


class TestFailureCli:
    GRID = [
        "--name", "cli-faulty",
        "--processors", "arm7-mini",
        "--workloads", "crc,compress",
        "--engines", "interpreted",
        "--retry-backoff", "0",
    ]

    def _install_flaky(self, monkeypatch, run_ids, failures=99):
        executor = _FlakyExecutor(runner_module.execute_run, run_ids, failures)
        monkeypatch.setattr(runner_module, "execute_run", executor)
        return executor

    def test_run_keep_going_reports_failures_and_exits_nonzero(
        self, monkeypatch, tmp_path
    ):
        self._install_flaky(monkeypatch, ["arm7-mini/crc@1/interpreted"])
        store = str(tmp_path / "store")
        out = io.StringIO()
        code = cli_main(
            ["run", *self.GRID, "--store", store, "--max-workers", "1",
             "--keep-going", "--verbose"],
            out,
        )
        assert code == 1
        message = out.getvalue()
        assert "FAILED" in message
        assert "injected fault" in message

    def test_status_shows_failure_rows_as_pending(self, monkeypatch, tmp_path):
        self._install_flaky(monkeypatch, ["arm7-mini/crc@1/interpreted"])
        store = str(tmp_path / "store")
        cli_main(
            ["run", *self.GRID, "--store", store, "--max-workers", "1", "--keep-going"],
            io.StringIO(),
        )
        out = io.StringIO()
        code = cli_main(["status", *self.GRID, "--store", store], out)
        message = out.getvalue()
        assert code == 2  # failed == pending: a re-run will retry it
        assert "1 failed, 1 pending" in message
        assert "failed arm7-mini/crc@1/interpreted" in message

    def test_report_renders_the_failure_table(self, monkeypatch, tmp_path):
        self._install_flaky(monkeypatch, ["arm7-mini/crc@1/interpreted"])
        store = str(tmp_path / "store")
        cli_main(
            ["run", *self.GRID, "--store", store, "--max-workers", "1", "--keep-going"],
            io.StringIO(),
        )
        out = io.StringIO()
        assert cli_main(["report", "--store", store], out) == 0
        message = out.getvalue()
        assert "failed runs" in message
        assert "injected fault" in message
        # The healthy sibling still aggregates normally.
        assert "compress" in message

    def test_compact_and_fsck_round_trip(self, tmp_path):
        store = str(tmp_path / "store")
        cli_main(
            ["run", *self.GRID, "--store", store, "--max-workers", "1"], io.StringIO()
        )
        # Tear a line to simulate a killed writer.
        shard = next((tmp_path / "store" / "shards").glob("*.jsonl"))
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"half a line')

        out = io.StringIO()
        assert cli_main(["fsck", "--store", store], out) == 2
        assert "1 quarantined line(s)" in out.getvalue()

        out = io.StringIO()
        assert cli_main(["compact", "--store", store], out) == 0
        assert "quarantined" in out.getvalue()

        out = io.StringIO()
        assert cli_main(["fsck", "--store", store], out) == 0
        assert "0 quarantined line(s)" in out.getvalue()

        # The compacted store still serves the whole campaign from cache.
        out = io.StringIO()
        code = cli_main(
            ["run", *self.GRID, "--store", store, "--max-workers", "1",
             "--expect-all-cached"],
            out,
        )
        assert code == 0

    def test_fsck_on_a_missing_store_fails_cleanly(self, tmp_path):
        out = io.StringIO()
        assert cli_main(["fsck", "--store", str(tmp_path / "nowhere")], out) == 1
        assert "does not exist" in out.getvalue()

    def test_resumed_campaign_after_worker_crash_serves_intact_results(
        self, tmp_path
    ):
        """Crash-recovery acceptance: a torn line costs one run, not the store."""
        store = str(tmp_path / "store")
        cli_main(
            ["run", *self.GRID, "--store", store, "--max-workers", "1"], io.StringIO()
        )
        # Simulate the orchestrator dying mid-append: truncate one shard's
        # final line so exactly one stored result is lost.
        shards = sorted((tmp_path / "store" / "shards").glob("*.jsonl"))
        victim = shards[0]
        text = victim.read_text()
        victim.write_text(text[: len(text) - 20])

        survivors = ResultStore(store)
        assert len(survivors) == 1  # the other shard's result warm-loads
        assert len(survivors.quarantined()) == 1

        out = io.StringIO()
        code = cli_main(
            ["run", *self.GRID, "--store", store, "--max-workers", "1", "--verbose"],
            out,
        )
        assert code == 0
        assert "1 from store" in out.getvalue()  # intact result re-served
        assert "1 executed" in out.getvalue()  # only the torn run re-ran
