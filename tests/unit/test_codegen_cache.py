"""Cold/warm/invalidation behaviour of the generated backend's module cache.

The contract (see ``repro/codegen/cache.py``):

* a cold build emits the module source and atomically writes it to
  ``<dir>/<key>.py``;
* warm builds load without re-emitting — from the in-process memo within
  one process, from disk across processes (simulated here with a fresh
  :class:`ModuleCache` on the same directory);
* the key folds in the spec fingerprint, the emit-relevant engine
  options and the ``repro`` version, so changing any of them misses the
  old entry — while run-length knobs (``max_cycles``/``stall_limit``)
  deliberately do *not* invalidate;
* corrupted, truncated or foreign cache files fall back to a fresh
  emission that overwrites them; an unwritable directory degrades to
  emit-per-process.  Neither ever raises.
"""

import os

import repro
from repro.codegen import (
    CODEGEN_CACHE,
    GeneratedEngine,
    ModuleCache,
    codegen_key,
    default_cache_dir,
)
from repro.core.engine import EngineOptions
from repro.describe.elaborate import elaborate_net
from repro.processors import build_processor, get_spec, supported_kernels
from repro.workloads import get_workload, workload_names

GENERATED = EngineOptions(backend="generated")


def fresh_net(model="arm7-mini"):
    net, _decoder, _core, _memory, _semantics = elaborate_net(get_spec(model))
    return net


# -- cold / warm lookups ---------------------------------------------------


def test_cold_build_emits_and_writes_source(tmp_path):
    cache = ModuleCache(directory=str(tmp_path))
    engine = GeneratedEngine(fresh_net(), cache=cache)

    assert engine.codegen_status == "emitted"
    assert cache.stats()["emits"] == 1
    assert engine.source_path == cache.path_for(engine.module.CODEGEN_KEY)
    assert os.path.isfile(engine.source_path)
    with open(engine.source_path, encoding="utf-8") as handle:
        assert handle.read() == engine.source
    # No tempfile litter from the atomic write.
    assert os.listdir(str(tmp_path)) == [os.path.basename(engine.source_path)]


def test_second_build_in_process_hits_the_memory_memo(tmp_path):
    cache = ModuleCache(directory=str(tmp_path))
    first = GeneratedEngine(fresh_net(), cache=cache)
    second = GeneratedEngine(fresh_net(), cache=cache)

    assert second.codegen_status == "memory"
    assert second.module is first.module
    assert cache.stats()["emits"] == 1
    assert cache.stats()["memory_hits"] == 1


def test_warm_process_loads_from_disk_with_zero_emissions(tmp_path):
    cold = ModuleCache(directory=str(tmp_path))
    first = GeneratedEngine(fresh_net(), cache=cold)

    # A fresh ModuleCache on the same directory models a new process.
    warm = ModuleCache(directory=str(tmp_path))
    second = GeneratedEngine(fresh_net(), cache=warm)

    assert second.codegen_status == "disk"
    assert second.source == first.source
    assert warm.stats() == {
        "entries": 1,
        "emits": 0,
        "memory_hits": 0,
        "disk_hits": 1,
        "invalid": 0,
    }


def test_disk_loaded_module_reproduces_the_cold_run(tmp_path, monkeypatch):
    """End-to-end warm start through the env-var override and the facade."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "cg"))
    assert default_cache_dir() == str(tmp_path / "cg")
    CODEGEN_CACHE.clear()
    kernel = supported_kernels("arm7-mini", workload_names())[0]
    workload = get_workload(kernel, scale=1)

    def run():
        processor = build_processor("arm7-mini", backend="generated")
        processor.load_program(workload.program)
        stats = processor.run(max_cycles=2_000_000)
        return processor.engine, stats

    cold_engine, cold = run()
    assert cold_engine.codegen_status == "emitted"
    CODEGEN_CACHE.clear()  # new-process simulation: memo gone, disk survives
    warm_engine, warm = run()
    assert warm_engine.codegen_status == "disk"

    assert (warm.cycles, warm.instructions, warm.stalls, warm.finish_reason) == (
        cold.cycles,
        cold.instructions,
        cold.stalls,
        cold.finish_reason,
    )
    CODEGEN_CACHE.clear()  # do not leak tmp-dir-backed entries to other tests


# -- key invalidation ------------------------------------------------------


def test_key_depends_on_the_spec_fingerprint():
    assert codegen_key("fp-a", GENERATED) != codegen_key("fp-b", GENERATED)


def test_key_depends_on_emit_relevant_options():
    base = codegen_key("fp", GENERATED)
    changed = [
        EngineOptions(backend="generated", use_sorted_transitions=False),
        EngineOptions(backend="generated", two_list_everywhere=True),
        EngineOptions(backend="generated", collect_utilization=True),
    ]
    keys = [codegen_key("fp", options) for options in changed]
    assert base not in keys
    assert len(set(keys)) == len(keys)


def test_key_ignores_run_length_knobs():
    base = codegen_key("fp", GENERATED)
    assert codegen_key("fp", EngineOptions(backend="generated", max_cycles=123)) == base
    assert codegen_key("fp", EngineOptions(backend="generated", stall_limit=7)) == base


def test_key_depends_on_lanes_for_the_batched_backend():
    """Batched emission bakes the lane budget in; scalar emission must not.

    A batched module's ``LANES`` constant caps its batch width, so modules
    emitted for different lane budgets are different artifacts — while for
    the scalar backends ``lanes`` is inert and must not fragment the cache.
    """
    scalar = codegen_key("fp", GENERATED)
    two = codegen_key("fp", EngineOptions(backend="batched", lanes=2))
    four = codegen_key("fp", EngineOptions(backend="batched", lanes=4))
    assert len({scalar, two, four}) == 3
    assert codegen_key("fp", EngineOptions(backend="generated", lanes=2)) == scalar


def test_key_depends_on_the_repro_version(monkeypatch):
    base = codegen_key("fp", GENERATED)
    monkeypatch.setattr(repro, "__version__", repro.__version__ + "+codegen-test")
    assert codegen_key("fp", GENERATED) != base


# -- robustness against bad cache files ------------------------------------


def poison_and_rebuild(tmp_path, content):
    """Cold-build, overwrite the cache file with ``content``, rebuild warm."""
    cold = ModuleCache(directory=str(tmp_path))
    engine = GeneratedEngine(fresh_net(), cache=cold)
    with open(engine.source_path, "w", encoding="utf-8") as handle:
        handle.write(content(engine.source))
    warm = ModuleCache(directory=str(tmp_path))
    rebuilt = GeneratedEngine(fresh_net(), cache=warm)
    return engine, rebuilt, warm


def test_corrupted_cache_file_falls_back_to_fresh_emission(tmp_path):
    engine, rebuilt, warm = poison_and_rebuild(tmp_path, lambda _: "def broken(:\n")

    assert rebuilt.codegen_status == "emitted"
    assert warm.stats()["invalid"] == 1
    assert warm.stats()["emits"] == 1
    # The bad file was overwritten with the fresh emission.
    with open(engine.source_path, encoding="utf-8") as handle:
        assert handle.read() == rebuilt.source


def test_truncated_cache_file_falls_back_to_fresh_emission(tmp_path):
    _, rebuilt, warm = poison_and_rebuild(
        tmp_path, lambda source: source[: len(source) // 2]
    )
    assert rebuilt.codegen_status == "emitted"
    assert warm.stats()["invalid"] == 1


def test_cache_file_with_foreign_key_falls_back_to_fresh_emission(tmp_path):
    """A syntactically valid module under the wrong key must be rejected."""
    foreign = (
        "CODEGEN_KEY = 'not-this-key'\n"
        "def make_step(rt):\n"
        "    return lambda cycle, stats: 0\n"
    )
    _, rebuilt, warm = poison_and_rebuild(tmp_path, lambda _: foreign)
    assert rebuilt.codegen_status == "emitted"
    assert warm.stats()["invalid"] == 1


def test_unwritable_cache_directory_degrades_to_emit_per_process(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file where the cache directory should go")
    directory = str(blocker / "codegen")  # makedirs/open fail: NotADirectoryError

    first = GeneratedEngine(fresh_net(), cache=ModuleCache(directory=directory))
    assert first.codegen_status == "emitted"
    # Nothing reached disk, so a second "process" emits again — degraded,
    # never broken.
    second = GeneratedEngine(fresh_net(), cache=ModuleCache(directory=directory))
    assert second.codegen_status == "emitted"


# -- staleness and the uncached path ---------------------------------------


def test_mismatched_cached_module_is_replaced_as_stale(tmp_path):
    """A cached module for a *different structure* under this key re-emits.

    This models a net mutated after elaboration (poisoning the
    fingerprint -> structure mapping): ``build_runtime`` detects the
    structure-digest mismatch and the engine overwrites the entry.
    """
    cache = ModuleCache(directory=str(tmp_path))
    donor = fresh_net("arm7-mini")
    first = GeneratedEngine(donor, cache=cache)

    impostor = fresh_net("strongarm")
    impostor.spec_fingerprint = donor.spec_fingerprint
    engine = GeneratedEngine(impostor, cache=cache)

    assert engine.codegen_status == "stale"
    assert engine.module is not first.module
    assert engine.module.STRUCTURE_DIGEST != first.module.STRUCTURE_DIGEST
    # The overwritten entry now describes the impostor's structure.
    with open(cache.path_for(engine.module.CODEGEN_KEY), encoding="utf-8") as handle:
        assert handle.read() == engine.source


def test_net_without_fingerprint_never_touches_the_cache(tmp_path):
    cache = ModuleCache(directory=str(tmp_path))
    net = fresh_net()
    net.spec_fingerprint = None

    engine = GeneratedEngine(net, cache=cache)

    assert engine.codegen_status == "uncached"
    assert engine.source_path is None
    assert engine.source  # still carries the emitted module text
    assert cache.stats() == {
        "entries": 0,
        "emits": 0,
        "memory_hits": 0,
        "disk_hits": 0,
        "invalid": 0,
    }
    assert os.listdir(str(tmp_path)) == []
