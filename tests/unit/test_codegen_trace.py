"""Traced emission mode of the source-level code generator.

The byte-identity contract: with tracing off — no ``TraceConfig``, a
disabled one, or one whose categories the emitter does not specialise on —
the cache key and the emitted module source are exactly what a
trace-unaware build produces.  Only enabling an emission-relevant category
(``firing``/``stall``) changes the key and injects ``TRF``/``TRS`` call
sites into the source.
"""

from repro.codegen import codegen_key
from repro.codegen.cache import EMISSION_TRACE_CATEGORIES, emit_trace_categories
from repro.codegen.emit import emit_module_source
from repro.core.engine import EngineOptions, SimulationEngine
from repro.describe.elaborate import elaborate_net
from repro.observe.trace import TraceConfig
from repro.processors import get_spec

FINGERPRINT = "f" * 40

#: Tracing-off variants that must all emit byte-identical modules.
OFF_OPTIONS = (
    EngineOptions(backend="generated"),
    EngineOptions(backend="generated", trace=TraceConfig(enabled=False)),
    EngineOptions(
        backend="generated", trace=TraceConfig(categories=("cache", "squash", "token"))
    ),
)

TRACED = EngineOptions(backend="generated", trace=TraceConfig())


def net_and_schedule(model="arm7-mini"):
    net, _decoder, _core, _memory, _semantics = elaborate_net(get_spec(model))
    engine = SimulationEngine(net)
    return net, engine.schedule


def test_emit_trace_categories_only_reports_emission_relevant_ones():
    assert EMISSION_TRACE_CATEGORIES == ("firing", "stall")
    for options in OFF_OPTIONS:
        assert emit_trace_categories(options) == ()
    assert emit_trace_categories(TRACED) == ("firing", "stall")
    firing_only = EngineOptions(
        backend="generated", trace=TraceConfig(categories=("firing", "cache"))
    )
    assert emit_trace_categories(firing_only) == ("firing",)


def test_codegen_key_unchanged_when_tracing_off():
    keys = {codegen_key(FINGERPRINT, options) for options in OFF_OPTIONS}
    assert len(keys) == 1
    assert codegen_key(FINGERPRINT, TRACED) not in keys


def test_codegen_key_differs_per_emitted_category_set():
    firing_only = EngineOptions(
        backend="generated", trace=TraceConfig(categories=("firing",))
    )
    stall_only = EngineOptions(
        backend="generated", trace=TraceConfig(categories=("stall",))
    )
    keys = {
        codegen_key(FINGERPRINT, options) for options in (TRACED, firing_only, stall_only)
    }
    assert len(keys) == 3


def test_tracing_off_source_is_byte_identical():
    net, schedule = net_and_schedule()
    sources = [emit_module_source(net, schedule, options)[0] for options in OFF_OPTIONS]
    assert sources[0] == sources[1] == sources[2]
    assert "TRF(" not in sources[0]
    assert "TRS(" not in sources[0]
    assert "TRACE_CATEGORIES" not in sources[0]


def test_traced_source_contains_trace_call_sites():
    net, schedule = net_and_schedule()
    untraced = emit_module_source(net, schedule, OFF_OPTIONS[0])[0]
    traced = emit_module_source(net, schedule, TRACED)[0]
    assert traced != untraced
    assert "TRACE_CATEGORIES = ('firing', 'stall')" in traced
    assert "TRF = rt['trace_firing']" in traced
    assert "TRS = rt['trace_stall']" in traced
    assert "TRF(cycle, " in traced
    assert "TRS(cycle, " in traced


def test_batched_emission_honours_the_same_contract():
    net, schedule = net_and_schedule()
    off = EngineOptions(backend="batched")
    off_disabled = EngineOptions(backend="batched", trace=TraceConfig(enabled=False))
    traced = EngineOptions(backend="batched", trace=TraceConfig())
    sources = {
        "off": emit_module_source(net, schedule, off)[0],
        "disabled": emit_module_source(net, schedule, off_disabled)[0],
        "traced": emit_module_source(net, schedule, traced)[0],
    }
    assert sources["off"] == sources["disabled"]
    assert "TRF(" not in sources["off"]
    assert "TRF(cycle, " in sources["traced"]
    assert "TRS(cycle, " in sources["traced"]
    assert codegen_key(FINGERPRINT, off) == codegen_key(FINGERPRINT, off_disabled)
    assert codegen_key(FINGERPRINT, off) != codegen_key(FINGERPRINT, traced)


def test_engine_options_coerce_trace_dicts():
    """JSON round-trips deliver the trace config as a plain dict."""
    options = EngineOptions(
        backend="generated",
        trace={"enabled": True, "capacity": 1000, "categories": ["firing"]},
    )
    assert isinstance(options.trace, TraceConfig)
    assert options.trace.categories == ("firing",)
    assert emit_trace_categories(options) == ("firing",)
