"""Unit tests for the compiled engine (repro.compiled).

Small hand-crafted nets check the compiled backend's mechanisms one at a
time: backend selection through ``EngineOptions``/``generate_simulator``,
drop-in equivalence with the interpreted engine, the active-place worklist,
reservation-token pooling, and the EngineContext services (emit / flush /
stop) under compiled execution.
"""

import pytest

from repro.compiled import CompiledEngine, compile_plan
from repro.core import (
    EngineOptions,
    InstructionToken,
    OperationClass,
    RCPN,
    SimulationEngine,
    generate_simulator,
)


def make_linear_net(num_tokens=3, stage_delay=1, extra_class=False):
    """fetch -> A -> B -> end with one operation class 'op'.

    ``extra_class`` registers a second operation class handled by a separate
    sub-net that no token ever enters (for worklist-skipping tests).
    """
    net = RCPN("linear")
    net.add_stage("A", capacity=1, delay=stage_delay)
    net.add_stage("B", capacity=1, delay=stage_delay)

    net.add_operation_class(OperationClass("op", symbols={}))
    gen = net.add_subnet("gen")
    sub = net.add_subnet("op", opclasses=("op",))
    place_a = net.add_place("A", sub, entry=True)
    place_b = net.add_place("B", sub)
    net.add_place("end", sub)

    if extra_class:
        net.add_operation_class(OperationClass("unused", symbols={}))
        idle = net.add_subnet("unused", opclasses=("unused",))
        net.add_place("A", idle, name="unused.A", entry=True)
        net.add_place("end", idle, name="unused.end")
        net.add_transition("unused.drain", idle, source="unused.A", target="unused.end")

    state = {"emitted": 0}

    def fetch_guard(_t, _ctx):
        return state["emitted"] < num_tokens

    def fetch_action(_t, ctx):
        state["emitted"] += 1
        ctx.emit(InstructionToken(instr=state["emitted"], opclass="op"))
        if state["emitted"] >= num_tokens:
            ctx.stop("done")

    net.add_transition("fetch", gen, guard=fetch_guard, action=fetch_action,
                       capacity_stages=["A"])
    net.add_transition("ab", sub, source=place_a, target=place_b)
    net.add_transition("bend", sub, source=place_b, target="op.end")
    return net, state


def make_reservation_net(cycles=5):
    """A generator producing a reservation each cycle and a consumer taking it."""
    net = RCPN("reservations")
    net.add_stage("R", capacity=1, delay=0)
    net.add_operation_class(OperationClass("op", symbols={}))
    gen = net.add_subnet("gen")
    sub = net.add_subnet("op", opclasses=("op",))
    net.add_place("R", sub, name="op.R", entry=True)

    state = {"produced": 0, "consumed": 0}

    def produce_guard(_t, _ctx):
        return state["produced"] < cycles

    def produce_action(_t, _ctx):
        state["produced"] += 1

    def consume_action(_t, ctx):
        state["consumed"] += 1
        if state["consumed"] >= cycles:
            ctx.stop("done")

    net.add_transition("produce", gen, guard=produce_guard, action=produce_action,
                       produces=["op.R"])
    net.add_transition("consume", gen, action=consume_action, consumes=["op.R"])
    return net, state


# -- backend selection -----------------------------------------------------------


def test_generate_simulator_backend_selection():
    net, _ = make_linear_net()
    engine, report = generate_simulator(net, EngineOptions(backend="compiled"))
    assert isinstance(engine, CompiledEngine)
    assert engine.backend == "compiled"
    assert report.backend == "compiled"
    assert report.compilation["transitions_compiled"] == 3
    assert report.compilation["places_compiled"] == len(report.place_order)

    net2, _ = make_linear_net()
    engine2, report2 = generate_simulator(net2)
    assert isinstance(engine2, SimulationEngine)
    assert not isinstance(engine2, CompiledEngine)
    assert report2.backend == "interpreted"
    assert report2.compilation is None


def test_generate_simulator_rejects_unknown_backend():
    net, _ = make_linear_net()
    with pytest.raises(ValueError, match="unknown engine backend"):
        generate_simulator(net, EngineOptions(backend="jit"))


# -- drop-in equivalence on hand-crafted nets ------------------------------------


@pytest.mark.parametrize("stage_delay", [0, 1, 2])
def test_compiled_matches_interpreted_on_linear_net(stage_delay):
    results = {}
    for backend in ("interpreted", "compiled"):
        net, _ = make_linear_net(num_tokens=5, stage_delay=stage_delay)
        engine, _ = generate_simulator(net, EngineOptions(backend=backend))
        stats = engine.run(max_cycles=200)
        results[backend] = (
            stats.cycles,
            stats.instructions,
            stats.stalls,
            dict(stats.transition_firings),
            stats.finish_reason,
        )
    assert results["compiled"] == results["interpreted"]
    assert results["compiled"][4] == "done"


def test_compiled_step_and_context_services():
    net, state = make_linear_net(num_tokens=2)
    engine = CompiledEngine(net)
    engine.step()
    assert engine.cycle == 1
    assert state["emitted"] >= 1
    # The engine context exposes the same services as the interpreted one.
    assert engine.ctx.cycle == 1
    engine.run(max_cycles=100)
    assert engine.stats.instructions == 2


def test_compiled_flush_stage_squashes_tokens():
    net, _ = make_linear_net(num_tokens=3)
    engine = CompiledEngine(net)
    engine.step()  # fetch deposits the first token into op.A
    place_a = net.place("op.A")
    assert place_a.occupancy() == 1
    squashed = engine.flush_stage("A")
    assert squashed == 1
    assert place_a.occupancy() == 0
    assert engine.stats.squashed == 1


# -- active-place worklist -------------------------------------------------------


def test_worklist_skips_never_used_subnet():
    net, _ = make_linear_net(num_tokens=3, extra_class=True)
    engine = CompiledEngine(net)
    engine.run(max_cycles=100)
    assert engine.stats.instructions == 3
    assert "op.A" in engine._worklist_names
    assert "op.B" in engine._worklist_names
    # No token ever entered the unused sub-net: its place is never visited.
    assert "unused.A" not in engine._worklist_names
    # End places are retirement sinks, never part of the worklist.
    assert "op.end" not in engine._worklist_names


def test_worklist_picks_up_manual_deposits():
    net, _ = make_linear_net(num_tokens=0)  # fetch never fires
    engine = CompiledEngine(net)
    token = InstructionToken(instr=0, opclass="op")
    net.place("op.A").deposit(token, ready_cycle=0, force=True)
    engine.request_halt("drain")
    engine.run(max_cycles=50)  # run() reseeds the worklist from place contents
    assert engine.stats.instructions == 1


def test_note_activity_for_direct_stepping():
    net, _ = make_linear_net(num_tokens=0)
    engine = CompiledEngine(net)
    token = InstructionToken(instr=0, opclass="op")
    net.place("op.A").deposit(token, ready_cycle=0, force=True)
    engine.note_activity("op.A")
    for _ in range(6):
        engine.step()
    assert engine.stats.instructions == 1


# -- reservation-token pooling ---------------------------------------------------


def test_reservation_tokens_are_pooled_and_reused():
    net, state = make_reservation_net(cycles=6)
    engine = CompiledEngine(net)
    engine.step()
    # The produced reservation was consumed in the same cycle and recycled.
    assert len(engine._reservation_pool) == 1
    recycled = engine._reservation_pool[0]
    engine.step()
    # The next production reused the pooled token object rather than
    # allocating a fresh one.
    assert len(engine._reservation_pool) == 1
    assert engine._reservation_pool[0] is recycled
    engine.run(max_cycles=50)
    assert state["produced"] == 6
    assert state["consumed"] == 6
    assert engine.stats.finish_reason == "done"


def test_reservation_pool_matches_interpreted_behaviour():
    results = {}
    for backend in ("interpreted", "compiled"):
        net, _ = make_reservation_net(cycles=4)
        engine, _ = generate_simulator(net, EngineOptions(backend=backend))
        stats = engine.run(max_cycles=50)
        results[backend] = (stats.cycles, dict(stats.transition_firings), stats.finish_reason)
    assert results["compiled"] == results["interpreted"]


# -- reset reuse -----------------------------------------------------------------


def test_reset_keeps_compiled_plan_and_pool_identity():
    net, state = make_linear_net(num_tokens=3)
    engine = CompiledEngine(net)
    first = engine.run(max_cycles=100)
    plan = engine.plan
    pool = engine._reservation_pool
    assert first.instructions == 3

    state["emitted"] = 0
    engine.reset()
    assert engine.plan is plan
    assert engine._reservation_pool is pool
    second = engine.run(max_cycles=100)
    assert second.cycles == first.cycles
    assert second.instructions == first.instructions
    assert dict(second.transition_firings) == dict(first.transition_firings)


def test_compile_plan_counters_are_consistent():
    net, _ = make_linear_net()
    engine = CompiledEngine(net)
    summary = engine.compilation_summary()
    assert summary["transitions_compiled"] == len(net.transitions)
    assert summary["places_compiled"] == len(engine.schedule.order)
    assert summary["nonempty_dispatch_entries"] <= summary["dispatch_entries"]
    # compile_plan is a pure function of the engine: recompiling yields the
    # same shape.
    assert compile_plan(engine).summary() == summary
