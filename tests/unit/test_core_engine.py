"""Unit tests for RCPN structure, the static scheduler and the engine.

These tests build small hand-crafted nets (independent of the ARM models)
and check the paper's mechanisms one at a time: the enable rule with stage
capacities, delays on places/transitions/tokens, reservation tokens,
priorities, the sorted-transition dispatch, reverse-topological evaluation
order and two-list (feedback) places.
"""

import pytest

from repro.core import (
    EngineOptions,
    InstructionToken,
    ModelError,
    RCPN,
    ReservationToken,
    SimulationEngine,
    SimulationError,
    calculate_sorted_transitions,
    generate_simulator,
    mark_feedback_places,
    place_evaluation_order,
)


def make_linear_net(num_tokens=3, stage_delay=1):
    """fetch -> A -> B -> end, one operation class 'op'."""
    net = RCPN("linear")
    net.add_stage("A", capacity=1, delay=stage_delay)
    net.add_stage("B", capacity=1, delay=stage_delay)
    from repro.core import OperationClass

    net.add_operation_class(OperationClass("op", symbols={}))
    gen = net.add_subnet("gen")
    sub = net.add_subnet("op", opclasses=("op",))
    place_a = net.add_place("A", sub, entry=True)
    place_b = net.add_place("B", sub)
    place_end = net.add_place("end", sub)

    state = {"emitted": 0}

    def fetch_guard(_t, _ctx):
        return state["emitted"] < num_tokens

    def fetch_action(_t, ctx):
        state["emitted"] += 1
        ctx.emit(InstructionToken(instr=state["emitted"], opclass="op"))
        if state["emitted"] >= num_tokens:
            ctx.stop("done")

    net.add_transition("fetch", gen, guard=fetch_guard, action=fetch_action,
                       capacity_stages=["A"])
    net.add_transition("ab", sub, source=place_a, target=place_b)
    net.add_transition("bend", sub, source=place_b, target=place_end)
    return net, state


# -- structural construction and validation -------------------------------------

def test_duplicate_stage_and_place_names_rejected():
    net = RCPN("dup")
    net.add_stage("X")
    with pytest.raises(ModelError):
        net.add_stage("X")
    sub = net.add_subnet("s", opclasses=("op",))
    net.add_place("X", sub, name="p")
    with pytest.raises(ModelError):
        net.add_place("X", sub, name="p")


def test_operation_class_must_have_a_subnet():
    from repro.core import OperationClass

    net = RCPN("bad")
    net.add_stage("A")
    net.add_operation_class(OperationClass("orphan", symbols={}))
    net.add_subnet("gen")
    net.add_transition("t", "gen", capacity_stages=["A"])
    with pytest.raises(ModelError):
        net.validate()


def test_subnet_without_entry_place_rejected():
    from repro.core import OperationClass

    net = RCPN("noentry")
    net.add_stage("A")
    net.add_operation_class(OperationClass("op", symbols={}))
    net.add_subnet("gen")
    sub = net.add_subnet("op", opclasses=("op",))
    net.add_place("A", sub)  # not marked as entry
    with pytest.raises(ModelError):
        net.validate()


def test_complexity_counts_places_transitions_arcs():
    net, _ = make_linear_net()
    size = net.complexity()
    assert size["places"] == 3
    assert size["transitions"] == 3
    assert size["subnets"] == 2
    assert size["arcs"] >= 4


# -- static analysis --------------------------------------------------------------

def test_sorted_transitions_table_orders_by_priority():
    net, _ = make_linear_net()
    table = calculate_sorted_transitions(net)
    names = [t.name for t in table[("op.A", "op")]]
    assert names == ["ab"]
    assert table[("op.end", "op")] == ()


def test_place_evaluation_order_is_reverse_topological():
    net, _ = make_linear_net()
    order = [p.name for p in place_evaluation_order(net)]
    assert order.index("op.B") < order.index("op.A")
    assert order.index("op.end") < order.index("op.B")


def test_feedback_place_detection_on_self_loop():
    from repro.core import OperationClass

    net = RCPN("loop")
    net.add_stage("A", capacity=2)
    net.add_operation_class(OperationClass("op", symbols={}))
    net.add_subnet("gen")
    sub = net.add_subnet("op", opclasses=("op",))
    place_a = net.add_place("A", sub, entry=True)
    net.add_place("end", sub)
    net.add_transition("self", sub, source=place_a, target=place_a)
    net.add_transition("out", sub, source=place_a, target="op.end", priority=1)
    feedback = {p.name for p in mark_feedback_places(net)}
    assert "op.A" in feedback


def test_generator_report_contents():
    net, _ = make_linear_net()
    _, report = generate_simulator(net)
    assert report.model_name == "linear"
    assert "fetch" in report.generator_transitions
    assert report.dispatch_entries == 3  # 3 places x 1 operation class


# -- engine behaviour ---------------------------------------------------------------

def test_tokens_flow_through_linear_pipeline_and_retire():
    net, _ = make_linear_net(num_tokens=3)
    engine = SimulationEngine(net)
    stats = engine.run(max_cycles=50)
    assert stats.instructions == 3
    assert stats.finished
    assert stats.retired_by_class["op"] == 3


def test_pipeline_throughput_is_one_token_per_cycle():
    net, _ = make_linear_net(num_tokens=5)
    engine = SimulationEngine(net)
    stats = engine.run(max_cycles=50)
    # 5 tokens through a 2-deep pipe: latency 3 + 4 extra tokens.
    assert stats.instructions == 5
    assert stats.cycles <= 5 + 4


def test_stage_capacity_limits_occupancy():
    net, _ = make_linear_net(num_tokens=4)
    engine = SimulationEngine(net)
    for _ in range(3):
        engine.step()
        for stage_name in ("A", "B"):
            assert net.stage(stage_name).occupancy <= 1


def test_place_delay_slows_token_progress():
    fast_net, _ = make_linear_net(num_tokens=3, stage_delay=1)
    slow_net, _ = make_linear_net(num_tokens=3, stage_delay=3)
    fast = SimulationEngine(fast_net).run(max_cycles=100)
    slow = SimulationEngine(slow_net).run(max_cycles=100)
    assert slow.cycles > fast.cycles


def test_token_delay_overrides_place_delay():
    net, _ = make_linear_net(num_tokens=1)
    # Inject a large token delay in the A->B transition.
    for transition in net.transitions:
        if transition.name == "ab":
            transition.action = lambda t, ctx: setattr(t, "delay", 10)
    baseline_net, _ = make_linear_net(num_tokens=1)
    slow = SimulationEngine(net).run(max_cycles=100)
    fast = SimulationEngine(baseline_net).run(max_cycles=100)
    assert slow.cycles >= fast.cycles + 9


def test_transition_priorities_choose_lowest_first():
    from repro.core import OperationClass

    net = RCPN("prio")
    net.add_stage("A")
    net.add_operation_class(OperationClass("op", symbols={}))
    gen = net.add_subnet("gen")
    sub = net.add_subnet("op", opclasses=("op",))
    place_a = net.add_place("A", sub, entry=True)
    net.add_place("end", sub)
    taken = []
    net.add_transition("low", sub, source=place_a, target="op.end", priority=1,
                       action=lambda t, ctx: taken.append("low"))
    net.add_transition("high", sub, source=place_a, target="op.end", priority=0,
                       action=lambda t, ctx: taken.append("high"))
    emitted = []

    def fetch(_t, ctx):
        if not emitted:
            emitted.append(1)
            ctx.emit(InstructionToken(instr=1, opclass="op"))
            ctx.stop()

    net.add_transition("fetch", gen, action=fetch, capacity_stages=["A"])
    SimulationEngine(net).run(max_cycles=20)
    assert taken == ["high"]


def test_guarded_priority_falls_back_to_next_arc():
    from repro.core import OperationClass

    net = RCPN("fallback")
    net.add_stage("A")
    net.add_operation_class(OperationClass("op", symbols={}))
    gen = net.add_subnet("gen")
    sub = net.add_subnet("op", opclasses=("op",))
    place_a = net.add_place("A", sub, entry=True)
    net.add_place("end", sub)
    taken = []
    net.add_transition("blocked", sub, source=place_a, target="op.end", priority=0,
                       guard=lambda t, ctx: False,
                       action=lambda t, ctx: taken.append("blocked"))
    net.add_transition("open", sub, source=place_a, target="op.end", priority=1,
                       action=lambda t, ctx: taken.append("open"))
    emitted = []

    def fetch(_t, ctx):
        if not emitted:
            emitted.append(1)
            ctx.emit(InstructionToken(instr=1, opclass="op"))
            ctx.stop()

    net.add_transition("fetch", gen, action=fetch, capacity_stages=["A"])
    SimulationEngine(net).run(max_cycles=20)
    assert taken == ["open"]


def test_reservation_token_blocks_capacity_until_consumed():
    from repro.core import OperationClass

    net = RCPN("reserve")
    net.add_stage("A", capacity=1)
    net.add_operation_class(OperationClass("op", symbols={}))
    gen = net.add_subnet("gen")
    sub = net.add_subnet("op", opclasses=("op",))
    place_a = net.add_place("A", sub, entry=True)
    net.add_place("end", sub)
    net.add_transition("drain", sub, source=place_a, target="op.end")
    state = {"emitted": 0}

    def fetch_guard(_t, _ctx):
        return state["emitted"] < 1

    def fetch(_t, ctx):
        state["emitted"] += 1
        ctx.emit(InstructionToken(instr=1, opclass="op"))
        ctx.stop()

    net.add_transition("fetch", gen, guard=fetch_guard, action=fetch, capacity_stages=["A"])
    engine = SimulationEngine(net)
    # Park a reservation token in A before starting: fetch must stall.
    place_a.deposit(ReservationToken(), ready_cycle=0, force=True)
    engine.step()
    assert state["emitted"] == 0
    place_a.take_reservation()
    net.stage("A")  # capacity freed by take_reservation through place.remove
    engine.step()
    assert state["emitted"] == 1


def test_flush_stage_squashes_tokens_and_releases_reservations():
    from repro.core import OperationClass, RegisterFile, RegRef

    net, _ = make_linear_net(num_tokens=1)
    regfile = RegisterFile("r", 1)
    engine = SimulationEngine(net)
    ref = RegRef(regfile.register(0))
    token = InstructionToken(instr=0, opclass="op", operands={"d": ref})
    ref.token = token
    ref.reserve_write()
    net.place("op.A").deposit(token, ready_cycle=0, force=True)
    squashed = engine.flush_stage("A")
    assert squashed == 1
    assert token.squashed
    assert regfile.writers[0] is None


def test_deadlocked_model_raises_simulation_error():
    net, _ = make_linear_net(num_tokens=1)
    # Block the B -> end transition forever.
    for transition in net.transitions:
        if transition.name == "bend":
            transition.guard = lambda t, ctx: False
    engine = SimulationEngine(net, EngineOptions(stall_limit=50))
    with pytest.raises(SimulationError):
        engine.run(max_cycles=10_000)


def test_max_cycles_limit_reported():
    net, _ = make_linear_net(num_tokens=2)
    engine = SimulationEngine(net)
    stats = engine.run(max_cycles=1)
    assert stats.finish_reason == "max_cycles"


def test_engine_reset_clears_dynamic_state():
    net, state = make_linear_net(num_tokens=2)
    engine = SimulationEngine(net)
    engine.run(max_cycles=50)
    engine.reset()
    state["emitted"] = 0
    assert engine.cycle == 0
    assert engine.pipeline_empty()
    stats = engine.run(max_cycles=50)
    assert stats.instructions == 2


def test_two_list_everywhere_option_preserves_cycle_counts():
    net_a, _ = make_linear_net(num_tokens=4)
    net_b, _ = make_linear_net(num_tokens=4)
    default = SimulationEngine(net_a).run(max_cycles=100)
    everywhere = SimulationEngine(net_b, EngineOptions(two_list_everywhere=True)).run(max_cycles=100)
    assert default.cycles == everywhere.cycles
    assert default.instructions == everywhere.instructions


def test_unsorted_dispatch_option_preserves_results():
    net_a, _ = make_linear_net(num_tokens=4)
    net_b, _ = make_linear_net(num_tokens=4)
    fast = SimulationEngine(net_a).run(max_cycles=100)
    slow = SimulationEngine(net_b, EngineOptions(use_sorted_transitions=False)).run(max_cycles=100)
    assert fast.cycles == slow.cycles


def test_statistics_summary_fields():
    net, _ = make_linear_net(num_tokens=2)
    stats = SimulationEngine(net).run(max_cycles=50)
    summary = stats.summary()
    assert summary["instructions"] == 2
    assert summary["cycles"] == stats.cycles
    assert stats.cpi == stats.cycles / 2
