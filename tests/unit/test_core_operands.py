"""Unit tests for the RCPN register model (RegisterFile / Register / RegRef / Const)."""

import pytest

from repro.core import (
    Const,
    HazardProtocolError,
    InstructionToken,
    PipelineStage,
    Place,
    RegRef,
    RegisterFile,
)


@pytest.fixture
def regfile():
    return RegisterFile("gpr", 4)


def test_register_file_initial_state(regfile):
    assert regfile.data == [0, 0, 0, 0]
    assert regfile.writers == [None] * 4


def test_register_file_rejects_bad_size():
    with pytest.raises(ValueError):
        RegisterFile("bad", 0)


def test_register_view_reads_and_writes_storage(regfile):
    reg = regfile.register(2)
    reg.value = 99
    assert regfile.data[2] == 99
    assert reg.value == 99


def test_register_index_bounds_checked(regfile):
    with pytest.raises(ValueError):
        regfile.register(7)


def test_overlapping_registers_share_storage_and_writer(regfile):
    bank0 = regfile.register(1, name="r1")
    bank1 = regfile.register(1, name="r1_fiq")
    assert bank0.overlaps(bank1)
    ref = RegRef(bank0)
    ref.reserve_write()
    other = RegRef(bank1)
    assert not other.can_read()
    assert not other.can_write()


def test_regref_read_then_writeback_cycle(regfile):
    reg = regfile.register(0)
    reg.value = 5
    producer = RegRef(reg)
    assert producer.can_read() and producer.can_write()
    producer.reserve_write()
    consumer = RegRef(reg)
    assert not consumer.can_read()
    producer.value = 42
    producer.writeback()
    assert consumer.can_read()
    assert consumer.read() == 42


def test_regref_read_while_write_pending_raises(regfile):
    reg = regfile.register(0)
    RegRefA = RegRef(reg)
    RegRefA.reserve_write()
    consumer = RegRef(reg)
    with pytest.raises(HazardProtocolError):
        consumer.read()


def test_regref_double_reserve_raises(regfile):
    reg = regfile.register(0)
    first, second = RegRef(reg), RegRef(reg)
    first.reserve_write()
    with pytest.raises(HazardProtocolError):
        second.reserve_write()


def test_regref_writeback_without_value_raises(regfile):
    ref = RegRef(regfile.register(0))
    ref.reserve_write()
    with pytest.raises(HazardProtocolError):
        ref.writeback()


def test_regref_release_clears_reservation(regfile):
    reg = regfile.register(0)
    ref = RegRef(reg)
    ref.reserve_write()
    ref.release()
    assert reg.writer is None
    assert RegRef(reg).can_write()


def _place(name="L3"):
    stage = PipelineStage(name, capacity=4)
    return Place(name, stage)


def test_regref_forwarding_via_state(regfile):
    """canRead(s)/read(s): forward the writer's internal value while it is in state s."""
    reg = regfile.register(0)
    reg.value = 1
    producer = RegRef(reg)
    producer.reserve_write()
    producer.value = 123
    token = InstructionToken(instr=None, opclass="alu", operands={"d": producer})
    producer.token = token
    place = _place("L3")
    place.deposit(token, ready_cycle=0)

    consumer = RegRef(reg)
    assert not consumer.can_read()
    assert consumer.can_read("L3")
    assert consumer.read("L3") == 123
    # Forwarding by stage name and by place object both work.
    assert consumer.can_read(place)


def test_regref_forwarding_wrong_state_raises(regfile):
    reg = regfile.register(0)
    producer = RegRef(reg)
    producer.reserve_write()
    token = InstructionToken(instr=None, opclass="alu", operands={"d": producer})
    producer.token = token
    place = _place("L2")
    place.deposit(token, ready_cycle=0)
    consumer = RegRef(reg)
    assert not consumer.can_read("L3")
    with pytest.raises(HazardProtocolError):
        consumer.read("L3")


def test_const_implements_the_full_interface():
    const = Const(7)
    assert const.can_read()
    assert not const.can_read("L3")
    assert const.read() == 7
    assert const.can_write()
    const.reserve_write()   # no-ops
    const.writeback()
    assert const.value == 7
    assert const.has_value


def test_token_symbol_attribute_access_and_release():
    regfile = RegisterFile("gpr", 2)
    d = RegRef(regfile.register(0))
    token = InstructionToken(instr=None, opclass="alu", operands={"d": d, "imm": Const(3)})
    d.token = token
    assert token.d is d
    assert token.imm.value == 3
    with pytest.raises(AttributeError):
        token.unknown_symbol
    d.reserve_write()
    token.release_reservations()
    assert regfile.writers[0] is None


def test_token_register_operands_flattens_lists():
    regfile = RegisterFile("gpr", 4)
    regs = [RegRef(regfile.register(i)) for i in range(3)]
    token = InstructionToken(instr=None, opclass="memm", operands={"regs": regs, "n": 3})
    assert len(token.register_operands()) == 3
