"""Unit tests for the Colored Petri Net substrate and the RCPN conversion."""

import pytest

from repro.cpn import (
    CPN,
    CPNSimulator,
    InputPattern,
    Multiset,
    OutputProduction,
    ReachabilityGraph,
    analyze_boundedness,
    find_deadlocks,
    rcpn_to_cpn,
)


# -- multisets --------------------------------------------------------------------

def test_multiset_add_remove_count():
    bag = Multiset(["a", "a", "b"])
    assert bag.count("a") == 2
    bag.remove("a")
    assert bag.count("a") == 1
    assert len(bag) == 2
    assert "b" in bag


def test_multiset_remove_more_than_present_raises():
    bag = Multiset(["a"])
    with pytest.raises(KeyError):
        bag.remove("a", 2)


def test_multiset_equality_and_copy():
    bag = Multiset([1, 2, 2])
    clone = bag.copy()
    assert bag == clone
    clone.add(3)
    assert bag != clone
    assert bag.frozen() == Multiset([2, 1, 2]).frozen()


# -- occurrence rule ----------------------------------------------------------------

def producer_consumer_net():
    net = CPN("pc")
    net.add_place("free", initial=[InputPattern.BLACK] * 2)
    net.add_place("items")
    net.add_place("done")
    net.add_transition(
        "produce",
        inputs=[InputPattern("free")],
        outputs=[OutputProduction("items", expression=lambda b: "item")],
    )
    net.add_transition(
        "consume",
        inputs=[InputPattern("items", variable="x")],
        outputs=[OutputProduction("done", expression=lambda b: b["x"]),
                 OutputProduction("free")],
    )
    return net


def test_enabled_transitions_and_firing():
    net = producer_consumer_net()
    assert [t.name for t in net.enabled_transitions()] == ["produce"]
    net.fire(net.transitions[0])
    assert net.place("items").marking.count("item") == 1
    assert net.is_enabled(net.transitions[1])
    net.fire(net.transitions[1])
    assert net.place("done").marking.count("item") == 1
    assert net.place("free").marking.count(InputPattern.BLACK) == 2


def test_guard_constrains_bindings():
    net = CPN("guarded")
    net.add_place("in", initial=[1, 2, 3])
    net.add_place("out")
    net.add_transition(
        "pick_even",
        inputs=[InputPattern("in", variable="x")],
        outputs=[OutputProduction("out", expression=lambda b: b["x"])],
        guard=lambda b: b["x"] % 2 == 0,
    )
    bindings = net.bindings(net.transitions[0])
    assert [b["x"] for b in bindings] == [2]


def test_variable_consistency_across_arcs():
    net = CPN("match")
    net.add_place("a", initial=["x", "y"])
    net.add_place("b", initial=["y"])
    net.add_place("out")
    net.add_transition(
        "join",
        inputs=[InputPattern("a", variable="v"), InputPattern("b", variable="v")],
        outputs=[OutputProduction("out", expression=lambda b: b["v"])],
    )
    bindings = net.bindings(net.transitions[0])
    assert [b["v"] for b in bindings] == ["y"]


def test_fire_disabled_transition_raises():
    net = producer_consumer_net()
    with pytest.raises(ValueError):
        net.fire(net.transitions[1])  # nothing to consume yet


def test_simulator_runs_to_quiescence():
    net = CPN("finite")
    net.add_place("src", initial=[InputPattern.BLACK] * 3)
    net.add_place("dst")
    net.add_transition("move", inputs=[InputPattern("src")], outputs=[OutputProduction("dst")])
    sim = CPNSimulator(net)
    steps = sim.run(max_steps=100)
    assert steps == 3
    assert len(net.place("dst").marking) == 3


# -- analysis -------------------------------------------------------------------------

def bounded_pipeline_net():
    net = CPN("fig2")
    net.add_place("L1_free", initial=[InputPattern.BLACK])
    net.add_place("L1_full")
    net.add_place("L2_free", initial=[InputPattern.BLACK])
    net.add_place("L2_full")
    net.add_transition("U1", inputs=[InputPattern("L1_free")], outputs=[OutputProduction("L1_full")])
    net.add_transition("U2", inputs=[InputPattern("L1_full"), InputPattern("L2_free")],
                       outputs=[OutputProduction("L1_free"), OutputProduction("L2_full")])
    net.add_transition("U3", inputs=[InputPattern("L2_full")], outputs=[OutputProduction("L2_free")])
    return net


def test_reachability_graph_of_bounded_net():
    graph = ReachabilityGraph(bounded_pipeline_net(), max_markings=100)
    assert not graph.truncated
    assert 2 <= graph.marking_count() <= 8
    assert graph.dead_transitions() == []


def test_boundedness_analysis():
    bounded, bounds = analyze_boundedness(bounded_pipeline_net(), max_markings=100)
    assert bounded
    assert all(bound <= 1 for bound in bounds.values())


def test_deadlock_detection_on_sink_net():
    net = CPN("deadlock")
    net.add_place("p", initial=[InputPattern.BLACK])
    net.add_place("q")
    net.add_transition("t", inputs=[InputPattern("p")], outputs=[OutputProduction("q")])
    deadlocks = find_deadlocks(net, max_markings=10)
    assert len(deadlocks) == 1  # the marking with the token in q is dead


def test_deadlock_free_cycle_net():
    net = CPN("cycle")
    net.add_place("p", initial=[InputPattern.BLACK])
    net.add_place("q")
    net.add_transition("pq", inputs=[InputPattern("p")], outputs=[OutputProduction("q")])
    net.add_transition("qp", inputs=[InputPattern("q")], outputs=[OutputProduction("p")])
    assert find_deadlocks(net, max_markings=10) == []


# -- RCPN -> CPN conversion --------------------------------------------------------------

def test_conversion_adds_complement_places_for_finite_stages():
    from repro.processors import build_example_processor

    processor = build_example_processor()
    cpn = rcpn_to_cpn(processor.net)
    free_places = [name for name in cpn.places if name.startswith("free[")]
    finite_stages = [s for s in processor.net.stages.values() if not s.unlimited]
    assert len(free_places) == len(finite_stages)
    # Complement places start full (all slots free).
    for name in free_places:
        assert len(cpn.place(name).marking) >= 1


def test_conversion_blows_up_arc_count():
    from repro.processors import build_example_processor, build_strongarm_processor

    for builder in (build_example_processor, build_strongarm_processor):
        processor = builder()
        rcpn_size = processor.net.complexity()
        cpn_size = rcpn_to_cpn(processor.net).complexity()
        assert cpn_size["places"] > rcpn_size["places"]
        assert cpn_size["arcs"] > rcpn_size["arcs"]


def test_converted_net_transitions_match_rcpn():
    from repro.processors import build_example_processor

    processor = build_example_processor()
    cpn = rcpn_to_cpn(processor.net)
    assert len(cpn.transitions) == len(processor.net.transitions)
