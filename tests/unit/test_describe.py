"""Unit tests for the declarative description layer (``repro.describe``)."""

import pytest

from repro.compiled.plan import PLAN_CACHE
from repro.core.exceptions import UnknownNameError
from repro.core.scheduler import SCHEDULE_CACHE
from repro.describe import (
    CacheLevelSpec,
    FetchSpec,
    HazardSpec,
    MemorySpec,
    OpClassPathSpec,
    PipelineSpec,
    SpecError,
    StageSpec,
    TransitionSpec,
    build_memory_config,
    elaborate,
    linear_path,
)
from repro.processors import (
    build_processor,
    get_spec,
    processor_names,
    strongarm_spec,
    supported_kernels,
    xscale_spec,
)
from repro.workloads import get_workload, workload_names


def tiny_spec(**overrides):
    """A minimal valid alu+system spec used by the validation tests."""
    fields = dict(
        name="Tiny",
        stages=(StageSpec("S1"), StageSpec("S2")),
        paths=(
            linear_path(
                "alu", ("S1", "S2"),
                hooks={"S2": ("alu.issue", "alu.execute"), "end": "alu.writeback"},
            ),
            linear_path("system", ("S1", "S2"), hooks={"S2": "system.issue", "end": "system.retire"}),
        ),
        hazards=HazardSpec(forward_states=("S2",), front_flush_stages=("S1",)),
        fetch=FetchSpec(style="sequential", capacity_stage="S1"),
    )
    fields.update(overrides)
    return PipelineSpec(**fields)


# -- spec validation ----------------------------------------------------------


def test_valid_spec_passes_validation():
    assert tiny_spec().validate()


def test_unknown_stage_in_path_is_rejected():
    bad = tiny_spec(
        paths=(linear_path("alu", ("S1", "S9"), hooks={"end": "alu.writeback"}),)
    )
    with pytest.raises(SpecError, match="unknown stage 'S9'"):
        bad.validate()


def test_duplicate_transition_names_are_rejected():
    path = linear_path("alu", ("S1", "S2"))
    bad = tiny_spec(
        paths=(
            OpClassPathSpec(
                opclass="alu",
                stages=path.stages,
                transitions=path.transitions + (path.transitions[0],),
            ),
        )
    )
    with pytest.raises(SpecError, match="duplicate transition name"):
        bad.validate()


def test_unknown_place_reference_is_rejected():
    bad = tiny_spec(
        paths=(
            linear_path("alu", ("S1", "S2")),
            OpClassPathSpec(
                opclass="system",
                stages=("S1",),
                transitions=(
                    # Consumes from a place key that does not exist.
                    TransitionSpec("system.go", "S1", "end", consumes=("nowhere",)),
                ),
            ),
        )
    )
    with pytest.raises(SpecError, match="unknown place 'nowhere'"):
        bad.validate()


def test_transition_name_colliding_with_fetch_is_rejected():
    # Transition names key the statistics counters and the generation
    # caches; a path transition reusing the fetch transition's name would
    # make the cached blueprints ambiguous.
    bad = tiny_spec(
        paths=(
            OpClassPathSpec(
                opclass="alu",
                stages=("S1",),
                transitions=(TransitionSpec("fetch", "S1", "end", hooks="alu.writeback"),),
            ),
        )
    )
    with pytest.raises(SpecError, match="duplicate transition name 'fetch'"):
        bad.validate()


def test_btb_fetch_requires_btb_predictor():
    bad = tiny_spec(fetch=FetchSpec(style="btb", capacity_stage="S1"))
    with pytest.raises(SpecError, match='requires predictor kind "btb"'):
        bad.validate()


def test_misspelled_forward_state_is_rejected():
    bad = tiny_spec(hazards=HazardSpec(forward_states=("S2X",), front_flush_stages=("S1",)))
    with pytest.raises(SpecError, match="forward state 'S2X'"):
        bad.validate()


def test_branch_resolve_hook_requires_btb_predictor():
    bad = tiny_spec(
        paths=(
            linear_path(
                "branch", ("S1", "S2"),
                hooks={"S2": "branch.resolve", "end": "branch.link_writeback"},
            ),
            linear_path("system", ("S1", "S2"), hooks={"S2": "system.issue", "end": "system.retire"}),
        )
    )
    with pytest.raises(SpecError, match="branch target"):
        bad.validate()


def test_mutated_net_does_not_reuse_a_stale_cached_schedule():
    # The fingerprint describes the spec; mutating the elaborated net must
    # fall back to fresh derivation instead of rehydrating a stale blueprint.
    from repro.core import EngineOptions, generate_simulator
    from repro.describe import elaborate_net

    spec = tiny_spec()
    elaborate(spec)  # populate the caches for this fingerprint

    net, _, _, _, semantics = elaborate_net(spec)
    subnet = net.subnets["alu"]
    net.add_transition(
        "alu.extra", subnet,
        source=net.place("alu.S2"), target=net.place("alu.end"),
        action=semantics.hook("alu.writeback").action,
    )
    engine, report = generate_simulator(net, EngineOptions(backend="compiled"))
    assert report.schedule_cache == "miss"
    extra = [t for t in engine.schedule.transitions_for(net.place("alu.S2"), "alu")]
    assert any(t.name == "alu.extra" for t in extra)


def test_name_preserving_mutation_also_invalidates_cached_schedule():
    # Changing a transition's priority keeps every name intact but changes
    # dispatch ordering; the structure signature must catch it.
    from repro.core import EngineOptions, generate_simulator
    from repro.describe import elaborate_net

    spec = tiny_spec()
    elaborate(spec, backend="compiled")  # populate the caches

    net, _, _, _, _ = elaborate_net(spec)
    net.transitions[-1].priority += 1
    _, report = generate_simulator(net, EngineOptions(backend="compiled"))
    assert report.schedule_cache == "miss"
    assert report.compilation["plan_cache"] == "miss"


def test_elaborate_rejects_non_spec():
    with pytest.raises(TypeError):
        elaborate(object())


# -- memory hierarchy spec -----------------------------------------------------


def test_default_memory_spec_matches_legacy_memory_config():
    # A spec that does not mention memory must elaborate to exactly the
    # hierarchy every pre-existing model was hard-wired with.
    from repro.memory import MemorySystemConfig

    assert build_memory_config(MemorySpec()) == MemorySystemConfig()


def test_bad_cache_geometry_is_rejected_at_spec_validation():
    for level in (
        CacheLevelSpec(associativity=0),
        CacheLevelSpec(associativity=-4),
        CacheLevelSpec(hit_latency=-1),
        CacheLevelSpec(miss_penalty=-2),
        CacheLevelSpec(line_bytes=24),
        CacheLevelSpec(size_bytes=1000, line_bytes=32, associativity=4),
    ):
        bad = tiny_spec(memory=MemorySpec(l1_data=level))
        with pytest.raises(SpecError):
            bad.validate()


def test_negative_memory_latency_is_rejected():
    with pytest.raises(SpecError, match="memory latency"):
        tiny_spec(memory=MemorySpec(memory_latency=-1)).validate()


def test_unified_l1_rejects_customised_split_caches():
    bad = MemorySpec(
        l1_unified=CacheLevelSpec(name="L1$"),
        l1_data=CacheLevelSpec(name="D$", size_bytes=1024, associativity=2),
    )
    with pytest.raises(SpecError, match="unified L1"):
        tiny_spec(memory=bad).validate()


def test_unified_l1_and_l2_elaborate_into_the_hierarchy():
    spec = tiny_spec(
        memory=MemorySpec(
            l1_unified=CacheLevelSpec(name="L1$", size_bytes=1024, associativity=2),
            l2=CacheLevelSpec(name="L2", size_bytes=8 * 1024, associativity=4, hit_latency=5),
        )
    )
    processor = elaborate(spec)
    memory = processor.memory
    assert memory.icache is memory.dcache
    assert memory.l2 is not None and memory.l2.config.hit_latency == 5
    hierarchy = processor.generation_report.memory_hierarchy
    assert [level["role"] for level in hierarchy] == ["l1-unified", "l2", "memory"]


def test_memory_spec_participates_in_the_fingerprint():
    base = tiny_spec()
    explicit_default = tiny_spec(memory=MemorySpec())
    smaller = tiny_spec(
        memory=MemorySpec(l1_data=CacheLevelSpec(name="D$", size_bytes=1024, associativity=2))
    )
    with_l2 = tiny_spec(memory=MemorySpec(l2=CacheLevelSpec(name="L2")))
    assert base.fingerprint() == explicit_default.fingerprint()
    assert base.fingerprint() != smaller.fingerprint()
    assert base.fingerprint() != with_l2.fingerprint()
    assert smaller.fingerprint() != with_l2.fingerprint()


def test_explicit_memory_config_still_overrides_the_spec():
    # The escape hatch: a runtime MemorySystemConfig wins over spec memory.
    from repro.memory import CacheConfig, MemorySystemConfig

    config = MemorySystemConfig(
        dcache=CacheConfig(name="D$", size_bytes=1024, associativity=2, miss_penalty=0)
    )
    processor = elaborate(tiny_spec(), memory_config=config)
    assert processor.memory.dcache.config.size_bytes == 1024


# -- fingerprints and generation caches ---------------------------------------


def test_fingerprint_is_stable_across_instances():
    assert strongarm_spec().fingerprint() == strongarm_spec().fingerprint()
    assert xscale_spec().fingerprint() == xscale_spec().fingerprint()


def test_fingerprint_distinguishes_models_and_edits():
    fingerprints = {get_spec(name).fingerprint() for name in processor_names()}
    assert len(fingerprints) == len(processor_names())
    # Any declarative edit must change the hash.
    base = tiny_spec()
    deeper = tiny_spec(stages=(StageSpec("S1"), StageSpec("S2", delay=2)))
    assert base.fingerprint() != deeper.fingerprint()


def test_rebuilding_a_spec_hits_the_generation_caches():
    spec = tiny_spec()
    first = elaborate(spec, backend="compiled")
    again = elaborate(spec, backend="compiled")
    assert first.generation_report.spec_fingerprint == spec.fingerprint()
    assert again.generation_report.schedule_cache == "hit"
    assert again.generation_report.compilation["plan_cache"] == "hit"
    # The caches expose hit/miss counters for the benchmark harness.
    assert SCHEDULE_CACHE.stats()["hits"] >= 1
    assert PLAN_CACHE.stats()["hits"] >= 1


def test_cached_rebuild_is_bit_identical():
    workload = get_workload("crc", scale=1)
    spec = strongarm_spec()
    runs = []
    for _ in range(2):
        processor = elaborate(spec, backend="compiled")
        processor.load_program(workload.program)
        stats = processor.run()
        runs.append(
            (stats.cycles, stats.instructions, dict(stats.transition_firings),
             processor.register(0))
        )
    assert runs[0] == runs[1]


def test_hand_built_nets_are_not_cached():
    from repro.core import RCPN

    net = RCPN("handmade")
    assert getattr(net, "spec_fingerprint", None) is None


# -- elaborated structure ------------------------------------------------------


def test_elaborated_strongarm_structure_matches_spec():
    spec = strongarm_spec()
    processor = build_processor("strongarm")
    net = processor.net
    assert net.spec_fingerprint == spec.fingerprint()
    assert net.spec is not None and net.spec.name == "StrongARM"
    # One sub-net per operation-class path plus the fetch sub-net.
    assert set(net.subnets) == {"fetch"} | {p.subnet_name for p in spec.paths}
    declared = {t.name for path in spec.paths for t in path.transitions}
    declared.add(spec.fetch.name)
    assert {t.name for t in net.transitions} == declared


def test_tiny_spec_elaborates_and_runs():
    processor = elaborate(tiny_spec())
    # A spec-built model is a full Processor: it can run an ALU-only program.
    from repro.isa.assembler import assemble

    program = assemble(
        """
        main:
            mov r0, #21
            add r0, r0, r0
            halt
        """
    )
    processor.load_program(program)
    stats = processor.run(max_cycles=1_000)
    assert stats.finish_reason == "halt"
    assert processor.register(0) == 42


# -- registries ----------------------------------------------------------------


def test_registry_exposes_the_shipped_models():
    names = processor_names()
    assert len(names) >= 12
    for required in (
        "example",
        "strongarm",
        "xscale",
        "arm7-mini",
        "xscale-deep",
        "strongarm-ds",
        "xscale-ds",
        "strongarm-l2",
        "xscale-l2",
        "strongarm-c512",
        "strongarm-c2k",
        "strongarm-c8k",
    ):
        assert required in names


def test_unknown_processor_name_lists_valid_names():
    with pytest.raises(UnknownNameError) as excinfo:
        build_processor("strongarn")
    message = str(excinfo.value)
    assert "strongarn" in message
    for name in processor_names():
        assert name in message
    # It is still a KeyError, for callers catching the narrow type.
    assert isinstance(excinfo.value, KeyError)


def test_unknown_workload_name_lists_valid_names():
    with pytest.raises(UnknownNameError) as excinfo:
        get_workload("sha256")
    message = str(excinfo.value)
    assert "sha256" in message
    for name in workload_names():
        assert name in message


def test_supported_kernels_respects_isa_subsets():
    assert supported_kernels("strongarm", workload_names()) == workload_names()
    example = supported_kernels("example", workload_names())
    assert set(example) == {"blowfish", "compress", "crc"}


def test_registry_specs_produce_runnable_processors():
    workload = get_workload("crc", scale=1)
    for name in processor_names():
        if "crc" not in supported_kernels(name, workload_names()):
            continue
        processor = build_processor(name)
        processor.load_program(workload.program)
        stats = processor.run(max_cycles=2_000_000)
        assert stats.finish_reason == "halt", name
