"""The generation-time caches: LRU order, mutation guard, report counters.

These pin the contract the campaign subsystem and the benchmark harness
lean on: rebuilding a spec-defined model is cheap because the static
schedule and the compiled plan are served from fingerprint-keyed caches —
and those caches must evict least-recently-used, must never replay stale
analysis against a mutated net, and must report hit/miss through
:class:`~repro.core.generator.GenerationReport`.
"""

from repro.compiled.plan import PLAN_CACHE
from repro.core.scheduler import SCHEDULE_CACHE, GenerationCache, StaticSchedule
from repro.describe import elaborate_net
from repro.processors import build_processor, strongarm_spec


class TestGenerationCacheLRU:
    def test_evicts_least_recently_used_beyond_max_entries(self):
        cache = GenerationCache(max_entries=2)
        cache.store("a", "blueprint-a")
        cache.store("b", "blueprint-b")
        cache.store("c", "blueprint-c")  # evicts "a" (oldest)
        assert cache.lookup("a") is None
        assert cache.lookup("b") == "blueprint-b"
        assert cache.lookup("c") == "blueprint-c"

    def test_lookup_refreshes_recency(self):
        cache = GenerationCache(max_entries=2)
        cache.store("a", "blueprint-a")
        cache.store("b", "blueprint-b")
        assert cache.lookup("a") == "blueprint-a"  # "a" is now most recent
        cache.store("c", "blueprint-c")  # evicts "b", not "a"
        assert cache.lookup("b") is None
        assert cache.lookup("a") == "blueprint-a"
        assert cache.lookup("c") == "blueprint-c"

    def test_store_of_existing_key_does_not_evict(self):
        cache = GenerationCache(max_entries=2)
        cache.store("a", "blueprint-a")
        cache.store("b", "blueprint-b")
        cache.store("b", "blueprint-b2")  # overwrite, not a new entry
        assert cache.stats()["entries"] == 2
        assert cache.lookup("a") == "blueprint-a"
        assert cache.lookup("b") == "blueprint-b2"

    def test_hit_and_miss_counters(self):
        cache = GenerationCache(max_entries=4)
        cache.store("a", "blueprint-a")
        cache.lookup("a")
        cache.lookup("a")
        cache.lookup("missing")
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        cache.clear()
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}


class TestStructureSignatureGuard:
    def test_mutated_net_is_not_served_a_stale_blueprint(self):
        SCHEDULE_CACHE.clear()
        net, _, _, _, _ = elaborate_net(strongarm_spec())
        first = StaticSchedule(net)
        assert not first.from_cache  # cache was empty

        # Same spec, same fingerprint — but the net is mutated after
        # elaboration, so rehydrating the cached blueprint would replay
        # analysis of a structure that no longer exists.
        mutated, _, _, _, _ = elaborate_net(strongarm_spec())
        mutated.transitions[0].priority += 17
        guarded = StaticSchedule(mutated)
        assert not guarded.from_cache

        # A clean rebuild after the poisoned store re-derives once more
        # (the mutated signature overwrote the entry), then hits again.
        clean, _, _, _, _ = elaborate_net(strongarm_spec())
        rederived = StaticSchedule(clean)
        assert not rederived.from_cache
        again, _, _, _, _ = elaborate_net(strongarm_spec())
        assert StaticSchedule(again).from_cache

    def test_unmutated_rebuild_is_served_from_cache(self):
        SCHEDULE_CACHE.clear()
        net, _, _, _, _ = elaborate_net(strongarm_spec())
        StaticSchedule(net)
        rebuilt, _, _, _, _ = elaborate_net(strongarm_spec())
        assert StaticSchedule(rebuilt).from_cache


class TestGenerationReportCounters:
    def test_report_records_miss_then_hit_for_both_caches(self):
        SCHEDULE_CACHE.clear()
        PLAN_CACHE.clear()

        first = build_processor("arm7-mini", backend="compiled").generation_report
        assert first.schedule_cache == "miss"
        assert first.compilation["plan_cache"] == "miss"
        assert SCHEDULE_CACHE.stats()["misses"] >= 1
        assert PLAN_CACHE.stats()["misses"] >= 1

        second = build_processor("arm7-mini", backend="compiled").generation_report
        assert second.schedule_cache == "hit"
        assert second.compilation["plan_cache"] == "hit"
        assert SCHEDULE_CACHE.stats()["hits"] >= 1
        assert PLAN_CACHE.stats()["hits"] >= 1
        assert second.spec_fingerprint == first.spec_fingerprint

    def test_hand_built_nets_report_uncached(self):
        from repro.core.generator import GenerationReport

        report = GenerationReport(model_name="hand-built")
        assert report.schedule_cache == "uncached"
        assert "schedule_cache" in report.summary()
