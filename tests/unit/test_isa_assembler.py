"""Unit tests for the two-pass assembler and the disassembler."""

import pytest

from repro.isa import AssemblerError, assemble, decode, disassemble
from repro.isa.assembler import encode_rotated_immediate
from repro.isa.instructions import (
    Branch,
    DataOpcode,
    DataProcessing,
    LoadStore,
    LoadStoreMultiple,
    Multiply,
    SystemOp,
)


def first_instr(text):
    program = assemble(text)
    return decode(program.words[0])


@pytest.mark.parametrize("source,opcode", [
    ("add r0, r1, r2", DataOpcode.ADD),
    ("sub r0, r1, r2", DataOpcode.SUB),
    ("rsb r0, r1, r2", DataOpcode.RSB),
    ("and r0, r1, r2", DataOpcode.AND),
    ("orr r0, r1, r2", DataOpcode.ORR),
    ("eor r0, r1, r2", DataOpcode.EOR),
    ("bic r0, r1, r2", DataOpcode.BIC),
])
def test_three_operand_alu_mnemonics(source, opcode):
    instr = first_instr(source)
    assert isinstance(instr, DataProcessing)
    assert instr.opcode == opcode
    assert (instr.rd, instr.rn, instr.operand2.rm) == (0, 1, 2)


@pytest.mark.parametrize("source,opcode", [
    ("cmp r1, r2", DataOpcode.CMP),
    ("cmn r1, r2", DataOpcode.CMN),
    ("tst r1, #1", DataOpcode.TST),
    ("teq r1, r2", DataOpcode.TEQ),
])
def test_compare_mnemonics_always_set_flags(source, opcode):
    instr = first_instr(source)
    assert instr.opcode == opcode
    assert instr.set_flags


def test_mov_immediate_and_register_forms():
    assert first_instr("mov r3, #100").operand2.immediate_value == 100
    assert first_instr("mov r3, r7").operand2.rm == 7
    assert first_instr("mvn r3, #0").opcode == DataOpcode.MVN


def test_shifted_operand_syntax():
    instr = first_instr("add r0, r1, r2, lsl #3")
    assert instr.operand2.shift_amount == 3
    assert instr.operand2.shift_type.name == "LSL"


def test_condition_suffix_and_s_flag():
    assert first_instr("addeq r0, r1, r2").cond.name == "EQ"
    assert first_instr("adds r0, r1, r2").set_flags
    assert first_instr("subne r0, r1, #1").cond.name == "NE"


def test_branch_mnemonic_disambiguation():
    # blt = branch on less-than, bls = branch on lower-or-same, bl = link.
    assert first_instr("blt 16").link is False
    assert first_instr("blt 16").cond.name == "LT"
    assert first_instr("bls 16").cond.name == "LS"
    assert first_instr("bl 16").link is True
    assert first_instr("bleq 16").link is True


def test_branch_to_label_offset():
    program = assemble("""
    main:
        nop
        b main
    """)
    branch = decode(program.words[1])
    assert isinstance(branch, Branch)
    # target = 4 + 8 + offset*4 == 0
    assert branch.offset == -3


@pytest.mark.parametrize("source", [
    "ldr r0, [r1]",
    "ldr r0, [r1, #4]",
    "ldr r0, [r1, #-4]",
    "ldrb r0, [r1, #1]",
    "str r0, [r1, r2]",
    "str r0, [r1, r2, lsl #2]",
    "ldr r0, [r1], #4",
    "str r0, [r1, #8]!",
])
def test_load_store_addressing_modes_assemble(source):
    instr = first_instr(source)
    assert isinstance(instr, LoadStore)


def test_post_index_and_writeback_flags():
    post = first_instr("ldr r0, [r1], #4")
    assert not post.pre_index
    pre_wb = first_instr("str r0, [r1, #8]!")
    assert pre_wb.pre_index and pre_wb.writeback
    negative = first_instr("ldr r0, [r1, #-4]")
    assert not negative.up and negative.offset_immediate == 4


@pytest.mark.parametrize("source,load,n", [
    ("ldmia r0!, {r1, r2, r3}", True, 3),
    ("stmdb sp!, {r4-r11, lr}", False, 9),
    ("ldmfd sp!, {r0-r3}", True, 4),
])
def test_block_transfers(source, load, n):
    instr = first_instr(source)
    assert isinstance(instr, LoadStoreMultiple)
    assert instr.load is load
    assert len(instr.register_list) == n
    assert instr.writeback


def test_multiply_forms():
    mul = first_instr("mul r0, r1, r2")
    assert isinstance(mul, Multiply) and not mul.accumulate
    mla = first_instr("mla r0, r1, r2, r3")
    assert mla.accumulate and mla.rn == 3


def test_system_mnemonics():
    assert first_instr("swi #3").op == SystemOp.SWI
    assert first_instr("halt").op == SystemOp.HALT
    assert first_instr("nop").op == SystemOp.NOP


def test_directives_word_space_equ_org():
    program = assemble("""
        .equ BASE, 0x100
        .org 0x20
    start:
        mov r0, #1
        .word 0xdeadbeef, BASE
        .space 8
    after:
        halt
    """)
    assert program.origin == 0x20
    assert program.words[1] == 0xDEADBEEF
    assert program.words[2] == 0x100
    assert program.symbols["after"] == 0x20 + 4 + 8 + 8
    assert program.symbols["BASE"] == 0x100


def test_labels_and_entry_selection():
    program = assemble("""
    data: .word 5
    main: mov r0, #1
          halt
    """)
    assert program.entry == program.symbols["main"]


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("x: nop\nx: nop")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError):
        assemble("frobnicate r0, r1")


def test_unencodable_immediate_rejected():
    with pytest.raises(AssemblerError):
        assemble("mov r0, #0x101")  # 257 cannot be encoded as a rotated byte


def test_comments_are_ignored():
    program = assemble("""
    ; full-line comment
    main: mov r0, #1  ; trailing comment
          halt        // c++-style
    """)
    assert len(program.words) == 2


@pytest.mark.parametrize("value", [0, 1, 255, 256, 0xFF00, 0x3FC00, 0xFF000000, 0xC0000034])
def test_encode_rotated_immediate_finds_encodings(value):
    imm, rot = encode_rotated_immediate(value)
    amount = (rot * 2) % 32
    recovered = ((imm >> amount) | (imm << (32 - amount))) & 0xFFFFFFFF if amount else imm
    assert recovered == value


@pytest.mark.parametrize("value", [257, 0x102, 0xFFFFFFF, 0x12345678])
def test_encode_rotated_immediate_rejects_unencodable(value):
    assert encode_rotated_immediate(value) is None


def test_disassembler_roundtrip_through_assembler():
    source = """
    main:
        mov r0, #0
        add r0, r0, #1
        cmp r0, #10
        blt main
        ldr r1, [r2, #4]
        halt
    """
    program = assemble(source)
    for word in program.words:
        text = disassemble(word)
        assert text and not text.startswith(".word")
