"""Unit tests for the binary encoding/decoding of the instruction set."""

import pytest

from repro.isa import (
    Branch,
    Condition,
    DataOpcode,
    DataProcessing,
    DecodeError,
    LoadStore,
    LoadStoreMultiple,
    Multiply,
    ShiftType,
    System,
    SystemOp,
    decode,
    encode,
)
from repro.isa.encoding import EncodeError
from repro.isa.instructions import Operand2


def roundtrip(instr):
    return decode(encode(instr))


@pytest.mark.parametrize("opcode", list(DataOpcode))
def test_data_processing_roundtrip_every_opcode(opcode):
    instr = DataProcessing(opcode=opcode, rd=1, rn=2,
                           operand2=Operand2.from_register(3), set_flags=True)
    assert roundtrip(instr) == instr


@pytest.mark.parametrize("imm,rot", [(0, 0), (1, 0), (255, 0), (0xFF, 4), (0x80, 12)])
def test_data_processing_immediate_roundtrip(imm, rot):
    instr = DataProcessing(opcode=DataOpcode.MOV, rd=5,
                           operand2=Operand2.from_immediate(imm, rot))
    assert roundtrip(instr) == instr


@pytest.mark.parametrize("shift_type", list(ShiftType))
@pytest.mark.parametrize("amount", [0, 1, 15, 31])
def test_shifted_register_operand_roundtrip(shift_type, amount):
    instr = DataProcessing(
        opcode=DataOpcode.ADD, rd=0, rn=1,
        operand2=Operand2.from_register(2, shift_type, amount),
    )
    decoded = roundtrip(instr)
    assert decoded.operand2.shift_type == shift_type
    assert decoded.operand2.shift_amount == amount


@pytest.mark.parametrize("cond", list(Condition))
def test_condition_field_roundtrip(cond):
    instr = DataProcessing(cond=cond, opcode=DataOpcode.ADD, rd=0, rn=0,
                           operand2=Operand2.from_immediate(1))
    assert roundtrip(instr).cond == cond


@pytest.mark.parametrize("load,byte,pre,up,writeback", [
    (True, False, True, True, False),
    (False, False, True, True, False),
    (True, True, True, False, False),
    (False, True, False, True, False),
    (True, False, True, True, True),
])
def test_load_store_flag_combinations(load, byte, pre, up, writeback):
    instr = LoadStore(load=load, byte=byte, rd=3, rn=4, offset_immediate=20,
                      pre_index=pre, up=up, writeback=writeback)
    assert roundtrip(instr) == instr


def test_load_store_register_offset_roundtrip():
    instr = LoadStore(load=True, rd=1, rn=2, offset_register=3,
                      shift_type=ShiftType.LSL, shift_amount=2, offset_immediate=None)
    decoded = roundtrip(instr)
    assert decoded.has_register_offset
    assert decoded.offset_register == 3
    assert decoded.shift_amount == 2


@pytest.mark.parametrize("registers", [(0,), (0, 1, 2), (4, 5, 6, 14), tuple(range(16))])
def test_load_store_multiple_register_lists(registers):
    instr = LoadStoreMultiple(load=True, rn=13, register_list=registers, writeback=True)
    assert roundtrip(instr).register_list == tuple(sorted(registers))


def test_load_store_multiple_empty_list_rejected():
    with pytest.raises(EncodeError):
        encode(LoadStoreMultiple(load=True, rn=0, register_list=()))


@pytest.mark.parametrize("offset", [0, 1, -1, 100, -100, (1 << 23) - 1, -(1 << 23)])
def test_branch_offset_roundtrip(offset):
    instr = Branch(link=False, offset=offset)
    assert roundtrip(instr).offset == offset


def test_branch_link_bit():
    assert roundtrip(Branch(link=True, offset=4)).link is True
    assert roundtrip(Branch(link=False, offset=4)).link is False


def test_branch_target_uses_pipeline_offset():
    # target = address + 8 + 4*offset, matching the ARM convention.
    assert Branch(offset=0).target(0x100) == 0x108
    assert Branch(offset=-2).target(0x100) == 0x100


@pytest.mark.parametrize("accumulate", [False, True])
def test_multiply_roundtrip(accumulate):
    instr = Multiply(rd=1, rm=2, rs=3, rn=4, accumulate=accumulate, set_flags=True)
    assert roundtrip(instr) == instr


@pytest.mark.parametrize("op", list(SystemOp))
def test_system_roundtrip(op):
    instr = System(op=op, imm=42)
    assert roundtrip(instr) == instr


def test_decode_rejects_reserved_condition():
    with pytest.raises(DecodeError):
        decode(0xF0000000)


def test_decode_rejects_out_of_range_word():
    with pytest.raises(DecodeError):
        decode(1 << 32)


def test_every_encoded_word_fits_32_bits():
    instr = LoadStore(load=True, rd=15, rn=15, offset_immediate=0xFFF)
    word = encode(instr)
    assert 0 <= word <= 0xFFFFFFFF


def test_operand2_immediate_value_rotation():
    op2 = Operand2.from_immediate(0xFF, 4)  # 0xFF ror 8
    assert op2.immediate_value == 0xFF000000
