"""Unit tests for the functional execution semantics and ALU helpers."""

import pytest

from repro.isa import CPUState, ConditionFlags, Condition, assemble, decode, execute
from repro.isa.alu import alu_operate, apply_shift, multiply, multiply_early_termination_cycles
from repro.isa.conditions import condition_passes
from repro.isa.flags import to_signed, to_unsigned
from repro.isa.instructions import DataOpcode, ShiftType
from repro.memory import MainMemory


def run_fragment(source, regs=None, max_steps=10_000):
    program = assemble(source)
    memory = MainMemory()
    memory.load_program(program)
    state = CPUState()
    state.pc = program.entry
    for index, value in (regs or {}).items():
        state.regs[index] = value
    steps = 0
    while not state.halted and steps < max_steps:
        execute(decode(memory.read_word(state.pc)), state, memory, address=state.pc)
        steps += 1
    return state, memory


# -- ALU helper functions -----------------------------------------------------

@pytest.mark.parametrize("a,b,expected", [(1, 2, 3), (0xFFFFFFFF, 1, 0), (2**31 - 1, 1, 2**31)])
def test_alu_add_results(a, b, expected):
    result, n, z, c, v, writes = alu_operate(DataOpcode.ADD, a, b, 0)
    assert result == expected
    assert writes


def test_alu_add_carry_and_overflow_flags():
    _, _, _, c, v, _ = alu_operate(DataOpcode.ADD, 0xFFFFFFFF, 1, 0)
    assert c and not v
    _, _, _, c, v, _ = alu_operate(DataOpcode.ADD, 0x7FFFFFFF, 1, 0)
    assert not c and v


def test_alu_sub_borrow_convention():
    # ARM convention: C set means no borrow.
    _, _, _, c, _, _ = alu_operate(DataOpcode.SUB, 5, 3, 0)
    assert c
    _, _, _, c, _, _ = alu_operate(DataOpcode.SUB, 3, 5, 0)
    assert not c


@pytest.mark.parametrize("opcode", [DataOpcode.TST, DataOpcode.TEQ, DataOpcode.CMP, DataOpcode.CMN])
def test_compare_opcodes_produce_no_result(opcode):
    result, *_rest, writes = alu_operate(opcode, 1, 2, 0)
    assert result is None or not writes


def test_alu_mov_and_mvn():
    assert alu_operate(DataOpcode.MOV, 0, 42, 0)[0] == 42
    assert alu_operate(DataOpcode.MVN, 0, 0, 0)[0] == 0xFFFFFFFF


@pytest.mark.parametrize("value,shift_type,amount,expected", [
    (1, ShiftType.LSL, 4, 16),
    (0x80000000, ShiftType.LSR, 31, 1),
    (0x80000000, ShiftType.ASR, 31, 0xFFFFFFFF),
    (0x1, ShiftType.ROR, 1, 0x80000000),
    (0xFF, ShiftType.LSL, 0, 0xFF),
])
def test_apply_shift(value, shift_type, amount, expected):
    result, _ = apply_shift(value, shift_type, amount, carry_in=False)
    assert result == expected


def test_multiply_truncates_to_32_bits():
    assert multiply(0x10000, 0x10000) == 0
    assert multiply(3, 4, 5) == 17


@pytest.mark.parametrize("value,cycles", [(0, 1), (0xFF, 1), (0xFFFF, 2), (0xFFFFFF, 3), (0xFFFFFFFF, 1), (0x12345678, 4)])
def test_multiply_early_termination(value, cycles):
    assert multiply_early_termination_cycles(value) == cycles


def test_signed_unsigned_conversions():
    assert to_signed(0xFFFFFFFF) == -1
    assert to_unsigned(-1) == 0xFFFFFFFF
    assert to_signed(5) == 5


# -- condition codes -----------------------------------------------------------

@pytest.mark.parametrize("cond,flags,expected", [
    (Condition.EQ, dict(z=True), True),
    (Condition.NE, dict(z=True), False),
    (Condition.GE, dict(n=True, v=True), True),
    (Condition.LT, dict(n=True, v=False), True),
    (Condition.GT, dict(z=False, n=False, v=False), True),
    (Condition.LE, dict(z=True), True),
    (Condition.HI, dict(c=True, z=False), True),
    (Condition.LS, dict(c=False), True),
    (Condition.AL, dict(), True),
])
def test_condition_passes(cond, flags, expected):
    assert condition_passes(cond, ConditionFlags(**flags)) is expected


# -- instruction execution ------------------------------------------------------

def test_arithmetic_program_result():
    state, _ = run_fragment("""
    main:
        mov r0, #0
        mov r1, #10
    loop:
        add r0, r0, r1
        subs r1, r1, #1
        bne loop
        halt
    """)
    assert state.regs[0] == 55
    assert state.regs[1] == 0


def test_conditional_execution_skips_failed_instructions():
    state, _ = run_fragment("""
    main:
        mov r0, #1
        cmp r0, #2
        moveq r1, #10
        movne r1, #20
        halt
    """)
    assert state.regs[1] == 20


def test_memory_load_store_word_and_byte():
    state, memory = run_fragment("""
    main:
        mov r0, #0xAB
        mov r1, #0x8000
        str r0, [r1, #4]
        ldr r2, [r1, #4]
        strb r0, [r1, #9]
        ldrb r3, [r1, #9]
        halt
    """)
    assert state.regs[2] == 0xAB
    assert state.regs[3] == 0xAB
    assert memory.read_word(0x8004) == 0xAB


def test_post_index_updates_base_register():
    state, _ = run_fragment("""
    main:
        mov r1, #0x8000
        mov r0, #7
        str r0, [r1], #4
        halt
    """)
    assert state.regs[1] == 0x8004


def test_block_transfer_round_trip_preserves_registers():
    state, _ = run_fragment("""
    main:
        mov sp, #0x8000
        mov r4, #11
        mov r5, #22
        mov r6, #33
        stmdb sp!, {r4-r6}
        mov r4, #0
        mov r5, #0
        mov r6, #0
        ldmia sp!, {r4-r6}
        halt
    """)
    assert (state.regs[4], state.regs[5], state.regs[6]) == (11, 22, 33)
    assert state.regs[13] == 0x8000


def test_branch_with_link_sets_lr_and_returns():
    state, _ = run_fragment("""
    main:
        mov r0, #1
        bl func
        add r0, r0, #100
        halt
    func:
        add r0, r0, #10
        mov pc, lr
    """)
    assert state.regs[0] == 111


def test_multiply_and_accumulate_instructions():
    state, _ = run_fragment("""
    main:
        mov r1, #6
        mov r2, #7
        mul r0, r1, r2
        mla r3, r1, r2, r0
        halt
    """)
    assert state.regs[0] == 42
    assert state.regs[3] == 84


def test_halt_sets_halted_flag():
    state, _ = run_fragment("main: halt")
    assert state.halted


def test_flags_carry_used_by_adc():
    state, _ = run_fragment("""
    main:
        mvn r1, #0
        adds r0, r1, #1    ; produces carry
        mov r2, #0
        adc r2, r2, #0     ; r2 = 0 + 0 + carry
        halt
    """)
    assert state.regs[2] == 1
