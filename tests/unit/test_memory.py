"""Unit tests for the memory substrate: memory, caches, predictors."""

import pytest

from repro.memory import (
    BimodalPredictor,
    BranchTargetBuffer,
    Cache,
    CacheConfig,
    MainMemory,
    MemorySystem,
    MemorySystemConfig,
    StaticNotTakenPredictor,
    StaticTakenPredictor,
)


# -- main memory ---------------------------------------------------------------

def test_memory_word_read_write_roundtrip():
    memory = MainMemory()
    memory.write_word(0x100, 0xDEADBEEF)
    assert memory.read_word(0x100) == 0xDEADBEEF


def test_memory_unwritten_locations_return_default():
    memory = MainMemory(default_value=0)
    assert memory.read_word(0x5000) == 0


def test_memory_byte_access_is_little_endian():
    memory = MainMemory()
    memory.write_word(0x200, 0x11223344)
    assert memory.read_byte(0x200) == 0x44
    assert memory.read_byte(0x203) == 0x11
    memory.write_byte(0x201, 0xAA)
    assert memory.read_word(0x200) == 0x1122AA44


def test_memory_alignment_is_forced():
    memory = MainMemory()
    memory.write_word(0x103, 7)
    assert memory.read_word(0x100) == 7


def test_memory_counts_accesses():
    memory = MainMemory()
    memory.write_word(0, 1)
    memory.read_word(0)
    memory.read_word(4)
    assert memory.write_count == 1
    assert memory.read_count == 2


# -- cache ----------------------------------------------------------------------

def test_cache_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(line_bytes=24)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, line_bytes=32, associativity=4)


def test_cache_config_rejects_non_positive_associativity():
    # Regression: associativity <= 0 used to slip through __post_init__ and
    # surface later as a ZeroDivisionError from num_sets.
    with pytest.raises(ValueError, match="associativity"):
        CacheConfig(associativity=0)
    with pytest.raises(ValueError, match="associativity"):
        CacheConfig(associativity=-8)


def test_cache_config_rejects_negative_latencies():
    # Regression: negative latencies produced negative token delays.
    with pytest.raises(ValueError, match="hit latency"):
        CacheConfig(hit_latency=-1)
    with pytest.raises(ValueError, match="miss penalty"):
        CacheConfig(miss_penalty=-5)
    with pytest.raises(ValueError, match="cache size"):
        CacheConfig(size_bytes=0, line_bytes=32, associativity=1)


def test_cache_miss_then_hit():
    cache = Cache(CacheConfig(size_bytes=1024, line_bytes=32, associativity=2,
                              hit_latency=1, miss_penalty=10))
    first = cache.access(0x40)
    second = cache.access(0x44)  # same line
    assert first == 11
    assert second == 1
    assert cache.stats.misses == 1 and cache.stats.hits == 1


def test_cache_lru_eviction_within_a_set():
    config = CacheConfig(size_bytes=128, line_bytes=32, associativity=2, hit_latency=1, miss_penalty=5)
    cache = Cache(config)
    num_sets = config.num_sets
    stride = 32 * num_sets  # same set, different tags
    cache.access(0)
    cache.access(stride)
    cache.access(0)              # touch to make address 0 most recently used
    cache.access(2 * stride)     # evicts `stride`
    assert cache.contains(0)
    assert not cache.contains(stride)
    assert cache.stats.evictions == 1


def test_cache_writeback_counted_for_dirty_victims():
    config = CacheConfig(size_bytes=64, line_bytes=32, associativity=1, hit_latency=1, miss_penalty=5)
    cache = Cache(config)
    stride = 32 * config.num_sets
    cache.access(0, is_write=True)
    cache.access(stride)  # evicts the dirty line
    assert cache.stats.writebacks == 1


def test_cache_hit_rate_property():
    cache = Cache(CacheConfig(size_bytes=1024, line_bytes=32, associativity=2))
    assert cache.stats.hit_rate == 0.0
    cache.access(0)
    cache.access(0)
    assert cache.stats.hit_rate == 0.5


# -- write-back path -------------------------------------------------------------

class RecordingBacking:
    """A backing-store stub that records every (address, is_write) access."""

    def __init__(self, latency=10):
        self.latency = latency
        self.calls = []

    def access_latency(self, address, is_write=False):
        self.calls.append((address, is_write))
        return self.latency


def direct_mapped(backing=None, sets=2):
    config = CacheConfig(
        name="WB", size_bytes=32 * sets, line_bytes=32, associativity=1,
        hit_latency=1, miss_penalty=0,
    )
    return Cache(config, backing=backing), 32 * sets  # (cache, same-set stride)


def test_dirty_eviction_charges_the_backing_store():
    backing = RecordingBacking(latency=10)
    cache, stride = direct_mapped(backing)
    first = cache.access(0, is_write=True)          # miss: fill read only
    assert backing.calls == [(0, False)]
    assert first == 1 + 10
    second = cache.access(stride)                   # evicts the dirty line
    assert cache.stats.writebacks == 1
    # The miss pays the fill *and* the victim writeback, in that order.
    assert backing.calls == [(0, False), (stride, False), (0, True)]
    assert second == 1 + 10 + 10


def test_clean_eviction_does_not_write_back():
    backing = RecordingBacking(latency=10)
    cache, stride = direct_mapped(backing)
    cache.access(0)
    latency = cache.access(stride)                  # evicts a clean line
    assert cache.stats.evictions == 1
    assert cache.stats.writebacks == 0
    assert (0, True) not in backing.calls
    assert latency == 1 + 10


def test_writeback_without_backing_is_counted_but_free():
    cache, stride = direct_mapped(backing=None)
    cache.access(0, is_write=True)
    latency = cache.access(stride)
    assert cache.stats.writebacks == 1
    assert latency == 1                             # nothing below to charge


def test_miss_cycles_accumulate_the_full_miss_price():
    backing = RecordingBacking(latency=10)
    cache, stride = direct_mapped(backing)
    cache.access(0, is_write=True)                  # 11
    cache.access(stride)                            # 11 + 10 writeback
    cache.access(stride)                            # hit: charges nothing
    assert cache.stats.miss_cycles == 11 + 21
    assert cache.stats.as_dict()["miss_cycles"] == 32


def test_write_hit_refreshes_lru_recency():
    # Mixed read/write sequence in one 2-way set: the write to A must make
    # A most-recently-used, so the next conflict evicts B, not A.
    config = CacheConfig(size_bytes=64, line_bytes=32, associativity=2,
                         hit_latency=1, miss_penalty=0)
    cache = Cache(config)
    stride = 32 * config.num_sets
    a, b, c = 0, stride, 2 * stride
    cache.access(a)
    cache.access(b)                                 # LRU order now: A, B(MRU)
    cache.access(a, is_write=True)                  # write hit: A becomes MRU
    cache.access(c)                                 # evicts B
    assert cache.contains(a) and not cache.contains(b)
    assert cache.stats.writebacks == 0              # B was clean
    cache.access(a)                                 # read hit keeps A dirty+MRU
    cache.access(b)                                 # evicts C (clean)
    assert cache.contains(a) and not cache.contains(c)
    assert cache.stats.writebacks == 0
    cache.access(c)                                 # evicts A -> dirty writeback
    assert cache.stats.writebacks == 1


def test_l1_writeback_lands_in_the_l2_not_in_memory():
    # Chained levels: a dirty L1 victim is written into the L2 (dirtying
    # the line there); only an L2 eviction pushes it towards memory.
    l2 = Cache(CacheConfig(name="L2", size_bytes=128, line_bytes=32,
                           associativity=2, hit_latency=4, miss_penalty=0),
               backing=RecordingBacking(latency=30))
    l1, stride = direct_mapped(backing=l2)
    l1.access(0, is_write=True)                     # L1+L2 miss, fill through L2
    assert l2.stats.misses == 1
    l1.access(stride)                               # dirty eviction -> L2 write hit
    assert l1.stats.writebacks == 1
    assert l2.stats.hits == 1 and l2.stats.accesses == 3
    assert l2.stats.writebacks == 0                 # still resident in L2


# -- memory system -----------------------------------------------------------------

def test_memory_system_functional_interface():
    system = MemorySystem()
    system.write_word(0x300, 99)
    assert system.read_word(0x300) == 99


def test_memory_system_latencies_hit_vs_miss():
    system = MemorySystem(MemorySystemConfig(memory_latency=20))
    miss = system.data_delay(0x1000)
    hit = system.data_delay(0x1000)
    assert miss > hit
    assert hit == system.config.dcache.hit_latency


def test_memory_system_perfect_cache_mode():
    system = MemorySystem(MemorySystemConfig(perfect_caches=True))
    assert system.data_delay(0x4000) == system.config.dcache.hit_latency
    assert system.instruction_delay(0x4000) == system.config.icache.hit_latency


def test_perfect_caches_count_accesses_as_hits():
    # Regression: perfect caches used to bypass the statistics entirely,
    # reporting zero accesses and a misleading 0.0 hit rate.
    system = MemorySystem(MemorySystemConfig(perfect_caches=True))
    for address in (0x0, 0x4, 0x1000):
        system.instruction_delay(address)
    system.data_delay(0x2000)
    system.data_delay(0x2000, is_write=True)
    stats = system.statistics()
    assert stats["icache"].accesses == 3 and stats["icache"].hit_rate == 1.0
    assert stats["dcache"].accesses == 2 and stats["dcache"].misses == 0
    assert system.statistics_summary()["perfect_caches"] is True


def test_perfect_caches_do_not_build_or_report_an_unreachable_l2():
    # Perfect L1s never miss, so a declared L2 can never be consulted;
    # reporting it would resurrect the all-zero-statistics lie.
    system = MemorySystem(
        MemorySystemConfig(
            perfect_caches=True,
            l2=CacheConfig(name="L2", size_bytes=4096, associativity=4, miss_penalty=0),
        )
    )
    system.data_delay(0x1000)
    assert system.l2 is None
    assert "l2" not in system.statistics()
    assert system.statistics_summary()["l2"] is None


def test_memory_system_statistics_structure():
    system = MemorySystem()
    system.instruction_delay(0)
    system.data_delay(0, is_write=True)
    stats = system.statistics()
    assert stats["icache"].accesses == 1
    assert stats["dcache"].accesses == 1
    assert "l2" not in stats
    summary = system.statistics_summary()
    assert summary["l2"] is None
    assert summary["dcache"]["accesses"] == 1


def test_memory_system_config_validation():
    with pytest.raises(ValueError, match="memory latency"):
        MemorySystemConfig(memory_latency=-1)
    with pytest.raises(ValueError, match="l2"):
        MemorySystemConfig(l2="not-a-config")
    with pytest.raises(ValueError, match="unified"):
        MemorySystemConfig(
            unified_l1=True,
            dcache=CacheConfig(name="D$", size_bytes=1024, associativity=2),
        )


def small_hierarchy(l2=True):
    small = dict(size_bytes=512, line_bytes=32, associativity=2,
                 hit_latency=1, miss_penalty=0)
    return MemorySystemConfig(
        icache=CacheConfig(name="I$", **small),
        dcache=CacheConfig(name="D$", **small),
        l2=CacheConfig(name="L2", size_bytes=4096, line_bytes=32,
                       associativity=4, hit_latency=6, miss_penalty=0)
        if l2 else None,
        memory_latency=30,
    )


def test_l2_serves_l1_capacity_misses_cheaper_than_memory():
    system = MemorySystem(small_hierarchy())
    stride = 32 * system.dcache.config.num_sets
    addresses = [i * stride for i in range(3)]      # one set, 2 ways: thrash
    for address in addresses:
        system.data_delay(address)                  # cold: through L2 to memory
    assert system.data_delay(addresses[0]) == 1 + 6  # evicted from L1, hits L2
    assert system.l2.stats.hits == 1
    direct = MemorySystem(small_hierarchy(l2=False))
    for address in addresses:
        direct.data_delay(address)
    assert direct.data_delay(addresses[0]) == 1 + 30  # same miss, memory-direct
    assert "l2" in system.statistics()
    assert system.statistics_summary()["l2"]["hits"] == 1


def test_unified_l1_shares_one_cache_between_fetch_and_data():
    level = CacheConfig(name="L1$", size_bytes=1024, associativity=2, miss_penalty=0)
    system = MemorySystem(
        MemorySystemConfig(icache=level, dcache=level, unified_l1=True)
    )
    assert system.icache is system.dcache
    system.instruction_delay(0x100)                 # warms the shared cache
    assert system.data_delay(0x100) == level.hit_latency
    assert system.statistics()["icache"].accesses == 2
    assert system.statistics_summary()["unified_l1"] is True


def test_reset_statistics_keeps_lines_warm_but_reset_colds_them():
    system = MemorySystem()
    miss = system.data_delay(0x1000)
    system.reset_statistics()
    assert system.statistics()["dcache"].accesses == 0
    assert system.dcache.contains(0x1000)           # counters only: still warm
    assert system.data_delay(0x1000) < miss
    system.reset()
    assert not system.dcache.contains(0x1000)       # full reset: cold tags
    assert system.data_delay(0x1000) == miss
    assert system.statistics()["dcache"].misses == 1


# -- branch predictors -----------------------------------------------------------

def test_static_predictors():
    not_taken = StaticNotTakenPredictor()
    taken = StaticTakenPredictor()
    assert not_taken.predict(0) is False
    assert taken.predict(0) is True
    assert not_taken.record(0x10, True) is False  # mispredicted
    assert not_taken.mispredictions == 1


def test_bimodal_predictor_learns_direction():
    predictor = BimodalPredictor(entries=16, initial=1)
    address = 0x40
    assert predictor.predict(address) is False
    predictor.update(address, True)
    predictor.update(address, True)
    assert predictor.predict(address) is True
    predictor.update(address, False)
    predictor.update(address, False)
    assert predictor.predict(address) is False


def test_bimodal_predictor_rejects_bad_sizes():
    with pytest.raises(ValueError):
        BimodalPredictor(entries=10)


def test_btb_miss_then_learn_target():
    btb = BranchTargetBuffer(entries=8)
    hit, taken, target = btb.lookup(0x100)
    assert not hit
    btb.update(0x100, True, 0x200)
    hit, taken, target = btb.lookup(0x100)
    assert hit and taken and target == 0x200


def test_btb_counter_hysteresis():
    btb = BranchTargetBuffer(entries=8, initial_counter=2)
    btb.update(0x80, True, 0x300)
    btb.update(0x80, False, 0x300)
    hit, taken, _ = btb.lookup(0x80)
    assert hit and taken  # one not-taken does not flip a strongly-taken entry
    btb.update(0x80, False, 0x300)
    btb.update(0x80, False, 0x300)
    assert btb.lookup(0x80)[1] is False


def test_btb_capacity_replacement():
    btb = BranchTargetBuffer(entries=2)
    btb.update(0x10, True, 0x100)
    btb.update(0x20, True, 0x200)
    btb.update(0x30, True, 0x300)
    assert len(btb.entries) == 2
