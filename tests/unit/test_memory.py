"""Unit tests for the memory substrate: memory, caches, predictors."""

import pytest

from repro.memory import (
    BimodalPredictor,
    BranchTargetBuffer,
    Cache,
    CacheConfig,
    MainMemory,
    MemorySystem,
    MemorySystemConfig,
    StaticNotTakenPredictor,
    StaticTakenPredictor,
)


# -- main memory ---------------------------------------------------------------

def test_memory_word_read_write_roundtrip():
    memory = MainMemory()
    memory.write_word(0x100, 0xDEADBEEF)
    assert memory.read_word(0x100) == 0xDEADBEEF


def test_memory_unwritten_locations_return_default():
    memory = MainMemory(default_value=0)
    assert memory.read_word(0x5000) == 0


def test_memory_byte_access_is_little_endian():
    memory = MainMemory()
    memory.write_word(0x200, 0x11223344)
    assert memory.read_byte(0x200) == 0x44
    assert memory.read_byte(0x203) == 0x11
    memory.write_byte(0x201, 0xAA)
    assert memory.read_word(0x200) == 0x1122AA44


def test_memory_alignment_is_forced():
    memory = MainMemory()
    memory.write_word(0x103, 7)
    assert memory.read_word(0x100) == 7


def test_memory_counts_accesses():
    memory = MainMemory()
    memory.write_word(0, 1)
    memory.read_word(0)
    memory.read_word(4)
    assert memory.write_count == 1
    assert memory.read_count == 2


# -- cache ----------------------------------------------------------------------

def test_cache_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(line_bytes=24)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, line_bytes=32, associativity=4)


def test_cache_miss_then_hit():
    cache = Cache(CacheConfig(size_bytes=1024, line_bytes=32, associativity=2,
                              hit_latency=1, miss_penalty=10))
    first = cache.access(0x40)
    second = cache.access(0x44)  # same line
    assert first == 11
    assert second == 1
    assert cache.stats.misses == 1 and cache.stats.hits == 1


def test_cache_lru_eviction_within_a_set():
    config = CacheConfig(size_bytes=128, line_bytes=32, associativity=2, hit_latency=1, miss_penalty=5)
    cache = Cache(config)
    num_sets = config.num_sets
    stride = 32 * num_sets  # same set, different tags
    cache.access(0)
    cache.access(stride)
    cache.access(0)              # touch to make address 0 most recently used
    cache.access(2 * stride)     # evicts `stride`
    assert cache.contains(0)
    assert not cache.contains(stride)
    assert cache.stats.evictions == 1


def test_cache_writeback_counted_for_dirty_victims():
    config = CacheConfig(size_bytes=64, line_bytes=32, associativity=1, hit_latency=1, miss_penalty=5)
    cache = Cache(config)
    stride = 32 * config.num_sets
    cache.access(0, is_write=True)
    cache.access(stride)  # evicts the dirty line
    assert cache.stats.writebacks == 1


def test_cache_hit_rate_property():
    cache = Cache(CacheConfig(size_bytes=1024, line_bytes=32, associativity=2))
    assert cache.stats.hit_rate == 0.0
    cache.access(0)
    cache.access(0)
    assert cache.stats.hit_rate == 0.5


# -- memory system -----------------------------------------------------------------

def test_memory_system_functional_interface():
    system = MemorySystem()
    system.write_word(0x300, 99)
    assert system.read_word(0x300) == 99


def test_memory_system_latencies_hit_vs_miss():
    system = MemorySystem(MemorySystemConfig(memory_latency=20))
    miss = system.data_delay(0x1000)
    hit = system.data_delay(0x1000)
    assert miss > hit
    assert hit == system.config.dcache.hit_latency


def test_memory_system_perfect_cache_mode():
    system = MemorySystem(MemorySystemConfig(perfect_caches=True))
    assert system.data_delay(0x4000) == system.config.dcache.hit_latency
    assert system.instruction_delay(0x4000) == system.config.icache.hit_latency


def test_memory_system_statistics_structure():
    system = MemorySystem()
    system.instruction_delay(0)
    system.data_delay(0, is_write=True)
    stats = system.statistics()
    assert stats["icache"].accesses == 1
    assert stats["dcache"].accesses == 1


# -- branch predictors -----------------------------------------------------------

def test_static_predictors():
    not_taken = StaticNotTakenPredictor()
    taken = StaticTakenPredictor()
    assert not_taken.predict(0) is False
    assert taken.predict(0) is True
    assert not_taken.record(0x10, True) is False  # mispredicted
    assert not_taken.mispredictions == 1


def test_bimodal_predictor_learns_direction():
    predictor = BimodalPredictor(entries=16, initial=1)
    address = 0x40
    assert predictor.predict(address) is False
    predictor.update(address, True)
    predictor.update(address, True)
    assert predictor.predict(address) is True
    predictor.update(address, False)
    predictor.update(address, False)
    assert predictor.predict(address) is False


def test_bimodal_predictor_rejects_bad_sizes():
    with pytest.raises(ValueError):
        BimodalPredictor(entries=10)


def test_btb_miss_then_learn_target():
    btb = BranchTargetBuffer(entries=8)
    hit, taken, target = btb.lookup(0x100)
    assert not hit
    btb.update(0x100, True, 0x200)
    hit, taken, target = btb.lookup(0x100)
    assert hit and taken and target == 0x200


def test_btb_counter_hysteresis():
    btb = BranchTargetBuffer(entries=8, initial_counter=2)
    btb.update(0x80, True, 0x300)
    btb.update(0x80, False, 0x300)
    hit, taken, _ = btb.lookup(0x80)
    assert hit and taken  # one not-taken does not flip a strongly-taken entry
    btb.update(0x80, False, 0x300)
    btb.update(0x80, False, 0x300)
    assert btb.lookup(0x80)[1] is False


def test_btb_capacity_replacement():
    btb = BranchTargetBuffer(entries=2)
    btb.update(0x10, True, 0x100)
    btb.update(0x20, True, 0x200)
    btb.update(0x30, True, 0x300)
    assert len(btb.entries) == 2
