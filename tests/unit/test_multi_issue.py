"""Unit tests for multi-issue modeling: IssueControl, gating, elaboration.

The integration suites (golden stats, differential, fuzz) pin the shipped
dual-issue models end to end; these tests check the mechanisms one by one —
the per-cycle arbiter, the no-overtaking front-end rule, the program-order
flush and what the elaborator/compiler derive from an IssueSpec.
"""

import pytest

from repro.describe import (
    FetchSpec,
    HazardSpec,
    IssueControl,
    IssueSpec,
    PipelineSpec,
    StageSpec,
    elaborate,
    linear_path,
)
from repro.isa.assembler import assemble
from repro.processors import build_processor, strongarm_ds_spec, xscale_ds_spec


class FakeCtx:
    def __init__(self, cycle=0):
        self.cycle = cycle


class FakeToken:
    _next = 0

    def __init__(self):
        FakeToken._next += 1
        self.seq = FakeToken._next
        self.squashed = False
        self.annotations = {}
        self.is_instruction = True


# -- IssueControl arbitration -------------------------------------------------


def test_width_budget_resets_each_cycle():
    control = IssueControl(width=2, in_order=False)
    ctx = FakeCtx(cycle=7)
    a, b, c = FakeToken(), FakeToken(), FakeToken()
    assert control.may_issue(a, ctx)
    control.note_issue(a, ctx)
    assert control.may_issue(b, ctx)
    control.note_issue(b, ctx)
    assert not control.may_issue(c, ctx)  # budget spent
    ctx.cycle = 8
    assert control.may_issue(c, ctx)  # fresh cycle, fresh budget


def test_port_budget_is_tracked_separately():
    control = IssueControl(width=2, in_order=False, port_limits={"dmem": 1})
    ctx = FakeCtx()
    first, second, third = FakeToken(), FakeToken(), FakeToken()
    assert control.may_issue(first, ctx, "dmem")
    control.note_issue(first, ctx, "dmem")
    # The memory port is exhausted, but an unported instruction still fits.
    assert not control.may_issue(second, ctx, "dmem")
    assert control.may_issue(third, ctx)


def test_in_order_gate_tracks_fetch_order_and_squashes():
    control = IssueControl(width=2, in_order=True)
    ctx = FakeCtx()
    old, middle, young = FakeToken(), FakeToken(), FakeToken()
    for token in (old, middle, young):
        control.note_fetch(token)
    assert not control.may_issue(young, ctx)
    assert control.may_issue(old, ctx)
    control.note_issue(old, ctx)
    # A squashed elder must not block its juniors forever.
    middle.squashed = True
    assert control.may_issue(young, ctx)


def test_may_advance_blocks_overtaking_within_a_stage():
    net_stage = type("Stage", (), {})()
    place = type("Place", (), {})()
    old, young = FakeToken(), FakeToken()
    place.tokens = [old]
    place.pending = []
    net_stage.places = [place]
    control = IssueControl(width=2, in_order=True)
    assert control.may_advance(old, net_stage)
    assert not control.may_advance(young, net_stage)
    place.tokens = []
    assert control.may_advance(young, net_stage)


def test_reset_clears_cycle_and_order_state():
    control = IssueControl(width=2, in_order=True, port_limits={"p": 1})
    ctx = FakeCtx()
    token = FakeToken()
    control.note_fetch(token)
    control.note_issue(token, ctx, "p")
    control.reset()
    assert control._issued == 0
    assert not control._program_order
    fresh = FakeToken()
    control.note_fetch(fresh)
    assert control.may_issue(fresh, ctx)


# -- elaboration --------------------------------------------------------------


def dual_issue_alu_spec(width=2):
    """A tiny ALU/branch/system pipeline (F -> D -> X) used by the micro tests."""
    from repro.describe import OpClassPathSpec, PlaceSpec, PredictorSpec, TransitionSpec

    stages = ("F", "D", "X")
    branch = OpClassPathSpec(
        "branch",
        stages=stages,
        extra_places=(PlaceSpec("stall", "FSTALL", name="branch.stall"),),
        transitions=(
            TransitionSpec("branch.decode", "F", "D"),
            TransitionSpec(
                "branch.taken", "D", "X", hooks="branch.taken", priority=0, produces=("stall",)
            ),
            TransitionSpec("branch.not_taken", "D", "X", hooks="branch.not_taken", priority=1),
            TransitionSpec("branch.unstall", "X", "end", consumes=("stall",), priority=0),
            TransitionSpec("branch.buffer", "X", "end", priority=1),
        ),
    )
    return PipelineSpec(
        name="TinyDual",
        stages=tuple(StageSpec(name, capacity=width) for name in stages)
        + (StageSpec("FSTALL"),),
        paths=(
            linear_path(
                "alu", stages,
                hooks={"X": "alu.issue", "end": ("alu.execute", "alu.writeback")},
            ),
            branch,
            linear_path(
                "system", stages,
                hooks={"X": "system.issue", "end": "system.retire"},
            ),
        ),
        hazards=HazardSpec(forward_states=("X",), front_flush_stages=("F", "D")),
        fetch=FetchSpec(style="sequential", capacity_stage="F", stall_stage="FSTALL"),
        predictor=PredictorSpec(kind="static_not_taken"),
        issue=IssueSpec(width=width, stage="D") if width > 1 else IssueSpec(),
    )


def run_program(spec, source, backend="interpreted"):
    processor = elaborate(spec, backend=backend)
    processor.load_program(assemble(source))
    stats = processor.run(max_cycles=100_000)
    assert stats.finish_reason == "halt"
    return processor, stats


def looped(body, iterations=32):
    """Wrap a body in a counted loop so the i-cache warms up and CPI converges."""
    return (
        "main:\n    mov r11, #%d\nloop:\n%s\n    subs r11, r11, #1\n"
        "    bgt loop\n    halt\n" % (iterations, body)
    )


INDEPENDENT_ALUS = "\n".join("    mov r%d, #%d" % (i, i + 1) for i in range(8))
DEPENDENT_CHAIN = "    mov r0, #1\n" + "\n".join("    add r0, r0, #1" for _ in range(7))


def test_dual_issue_cuts_cpi_of_independent_alu_stream():
    _, single = run_program(dual_issue_alu_spec(width=1), looped(INDEPENDENT_ALUS))
    processor, dual = run_program(dual_issue_alu_spec(width=2), looped(INDEPENDENT_ALUS))
    assert dual.instructions == single.instructions
    assert processor.register(7) == 8
    single_cpi = single.cycles / single.instructions
    dual_cpi = dual.cycles / dual.instructions
    # Eight independent moves per iteration: the wide machine should get a
    # large fraction of the ideal 2x, even with the loop-closing branch.
    assert dual_cpi < 0.75 * single_cpi


def test_dependent_chain_gains_little_from_dual_issue():
    _, single = run_program(dual_issue_alu_spec(width=1), looped(DEPENDENT_CHAIN))
    processor, dual = run_program(dual_issue_alu_spec(width=2), looped(DEPENDENT_CHAIN))
    assert processor.register(0) == 8
    # RAW hazards serialise issue: width buys far less than on the
    # independent stream (allow the fetch/decode overlap to help a bit).
    assert dual.cycles > 0.85 * single.cycles


def test_issue_never_exceeds_width_in_any_cycle():
    spec = dual_issue_alu_spec(width=2)
    processor = elaborate(spec)
    processor.load_program(assemble(looped(INDEPENDENT_ALUS)))
    control = processor.net.units["issue_control"]

    issued_per_cycle = []
    original = IssueControl.note_issue

    def counting(self, token, ctx, port=None):
        issued_per_cycle.append(ctx.cycle)
        original(self, token, ctx, port)

    IssueControl.note_issue = counting
    try:
        processor.run(max_cycles=10_000)
    finally:
        IssueControl.note_issue = original
    per_cycle = {}
    for cycle in issued_per_cycle:
        per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
    assert per_cycle, "nothing issued"
    assert max(per_cycle.values()) <= control.width
    assert max(per_cycle.values()) == 2  # dual issue actually happened


def test_memory_port_pairs_loads_with_alu_but_never_with_loads():
    """strongarm-ds pairs alu+load freely but never two memory ops."""
    pairs = "\n".join(
        "    ldr r%d, [r8, #%d]\n    add r7, r7, #1" % (i % 6, 4 * i) for i in range(8)
    )
    source = (
        "main:\n    mov r8, #4096\n    mov r11, #32\nloop:\n%s\n"
        "    subs r11, r11, #1\n    bgt loop\n    halt\n" % pairs
    )

    issued = []
    original = IssueControl.note_issue

    def recording(self, token, ctx, port=None):
        issued.append((ctx.cycle, token.opclass))
        original(self, token, ctx, port)

    def run(model):
        processor = build_processor(model)
        processor.load_program(assemble(source))
        stats = processor.run(max_cycles=100_000)
        assert stats.finish_reason == "halt"
        return stats

    IssueControl.note_issue = recording
    try:
        dual = run("strongarm-ds")
    finally:
        IssueControl.note_issue = original
    single = run("strongarm")

    per_cycle = {}
    for cycle, opclass in issued:
        per_cycle.setdefault(cycle, []).append(opclass)
    dual_cycles = [classes for classes in per_cycle.values() if len(classes) == 2]
    # Dual issue happens a lot on this stream ...
    assert len(dual_cycles) > 100
    # ... but the single data-cache port never admits two memory ops at once.
    assert all(classes.count("mem") + classes.count("memm") <= 1 for classes in per_cycle.values())
    # And the wide machine beats its single-issue parent outright.
    assert dual.instructions == single.instructions
    assert dual.cycles < 0.8 * single.cycles


#: A computed PC write whose shadow contains a *taken branch*: if the
#: squashed wrong-path branch leaves its fetch-stall reservation behind,
#: fetch blocks forever and the run never halts (regression for the
#: reservation-provenance squash in flush_younger).
JUMP_OVER_TAKEN_BRANCH = """
main:
    mov r1, #24
    mov pc, r1
    mov r5, #7
    b main
    mov r6, #8
    mov r7, #9
    mov r0, #42
    halt
"""


@pytest.mark.parametrize("model", ["strongarm-ds", "xscale-ds", "strongarm", "arm7-mini"])
@pytest.mark.parametrize("backend", ["interpreted", "compiled"])
def test_deep_redirect_reclaims_wrong_path_branch_stall(model, backend):
    processor = build_processor(model, backend=backend)
    processor.load_program(assemble(JUMP_OVER_TAKEN_BRANCH))
    stats = processor.run(max_cycles=10_000)
    assert stats.finish_reason == "halt"
    assert stats.instructions == 4  # mov r1, mov pc, mov r0, halt
    assert processor.register(0) == 42
    assert processor.register(5) == 0  # the wrong-path shadow never retires
    assert processor.register(6) == 0


def test_slow_load_to_pc_with_pending_branch_stall_halts():
    """Single-issue regression: a cache-missing ldr pc gives the wrong-path
    taken branch time to issue and park its stall token before the redirect."""
    source = """
main:
    mov r4, #4096
    mov r1, #36
    str r1, [r4]
    ldr pc, [r4]
    b main
    mov r6, #8
    mov r7, #9
    mov r2, #1
    mov r3, #1
    mov r0, #42
    halt
"""
    for backend in ("interpreted", "compiled"):
        processor = build_processor("strongarm", backend=backend)
        processor.load_program(assemble(source))
        stats = processor.run(max_cycles=10_000)
        assert stats.finish_reason == "halt", backend
        assert stats.instructions == 6
        assert processor.register(0) == 42
        assert processor.register(6) == 0


@pytest.mark.parametrize("model", ["strongarm-ds", "xscale-ds"])
def test_load_to_pc_under_dual_issue_blocks_younger_issue(model):
    """A cache-missing ldr pc must not let younger shadow instructions
    complete first (the r15 write reservation interlocks younger issue)."""
    source = """
main:
    mov r4, #4096
    mov r1, #32
    str r1, [r4]
    ldr pc, [r4]
    add r5, r5, #64
    swi #1
    mov r6, #8
    mov r7, #9
    mov r0, #42
    halt
"""
    processor = build_processor(model)
    processor.load_program(assemble(source))
    stats = processor.run(max_cycles=10_000)
    assert stats.finish_reason == "halt"
    assert stats.instructions == 6
    assert processor.register(0) == 42
    assert processor.register(5) == 0
    # The wrong-path swi in the shadow must not have produced output.
    assert list(getattr(processor.core, "output", [])) == []


def test_flush_younger_squashes_by_program_order():
    processor = build_processor("strongarm-ds")
    engine = processor.engine
    decoder = processor.decoder
    words = [0xE3A00001, 0xE3A01002, 0xE3A02003]  # mov r0/r1/r2
    tokens = [decoder.decode_word(word, pc=4 * i) for i, word in enumerate(words)]
    net = processor.net
    net.place("alu.DE").deposit(tokens[0], 0, force=True)
    net.place("alu.EM").deposit(tokens[1], 0, force=True)
    net.place("alu.FD").deposit(tokens[2], 0, force=True)

    squashed = engine.ctx.flush_younger(tokens[0].seq)
    assert squashed == 2
    assert not tokens[0].squashed
    assert tokens[1].squashed and tokens[2].squashed
    assert engine.stats.squashed == 2
    assert net.place("alu.DE").tokens == [tokens[0]]


def test_engine_reset_clears_issue_control():
    processor = build_processor("strongarm-ds")
    control = processor.net.units["issue_control"]
    control.note_fetch(FakeToken())
    processor.engine.reset()  # net.reset clears clears_with_net units
    assert not control._program_order


# -- compiled plan + reports --------------------------------------------------


def test_compiled_plan_reports_issue_gated_transitions():
    single = build_processor("strongarm", backend="compiled")
    assert single.generation_report.compilation["issue_gated_transitions"] == 0

    dual = build_processor("strongarm-ds", backend="compiled")
    gated = dual.generation_report.compilation["issue_gated_transitions"]
    # alu/mul/mem/memm/system issue + branch.taken/branch.not_taken.
    assert gated == 7

    assert (
        build_processor("xscale-ds", backend="compiled")
        .generation_report.compilation["issue_gated_transitions"]
        > 0
    )


def test_dual_issue_specs_fetch_width_wide():
    for factory in (strongarm_ds_spec, xscale_ds_spec):
        spec = factory()
        processor = elaborate(spec)
        fetch = [t for t in processor.net.transitions if t.is_generator]
        assert len(fetch) == 1
        assert fetch[0].max_firings_per_cycle == spec.issue.width == 2
