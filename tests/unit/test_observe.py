"""Unit tests for the ``repro.observe`` package.

Covers the pieces that do not need a simulation run: ``TraceConfig``
validation, the ring buffer and sinks, JSONL/Chrome export round-trips,
Chrome-trace validation, lifetime reconstruction and the Konata-style
renderer, and the metrics registry.  End-to-end tracing against real
engines lives in ``tests/integration/test_trace_equivalence.py``.
"""

import json

import pytest

from repro.observe.lifetime import InstructionLifetime, build_lifetimes, render_pipeline
from repro.observe.metrics import (
    MetricsRegistry,
    merge_cumulative,
    read_metrics_json,
    render_metrics,
    snapshot_value,
    write_metrics_json,
)
from repro.observe.trace import (
    TRACE_CATEGORIES,
    TraceConfig,
    Tracer,
    build_tracer,
    chrome_trace,
    event_dict,
    read_trace,
    validate_chrome_trace,
)


class FakeToken:
    def __init__(self, seq, opclass="alu", pc=0x100):
        self.seq = seq
        self.opclass = opclass
        self.pc = pc


# -- TraceConfig -------------------------------------------------------------


def test_trace_config_defaults_cover_every_category():
    assert TraceConfig().categories == TRACE_CATEGORIES


def test_trace_config_normalises_list_categories():
    config = TraceConfig(categories=["firing", "stall"])
    assert config.categories == ("firing", "stall")


def test_trace_config_rejects_unknown_categories():
    with pytest.raises(ValueError, match="unknown trace categories"):
        TraceConfig(categories=("firing", "bogus"))


@pytest.mark.parametrize("capacity", [0, -1, 1.5, "many"])
def test_trace_config_rejects_bad_capacity(capacity):
    with pytest.raises(ValueError, match="capacity"):
        TraceConfig(capacity=capacity)


def test_build_tracer_returns_none_when_off():
    assert build_tracer(None) is None
    assert build_tracer(TraceConfig(enabled=False)) is None
    assert build_tracer(TraceConfig(categories=())) is None
    assert isinstance(build_tracer(TraceConfig()), Tracer)


# -- ring buffer and recording ----------------------------------------------


def test_ring_capacity_drops_oldest_but_counts_everything():
    tracer = Tracer(TraceConfig(capacity=3))
    for cycle in range(5):
        tracer.firing(cycle, "t", None)
    assert tracer.recorded == 5
    assert tracer.dropped == 2
    assert [event[1] for event in tracer.events] == [2, 3, 4]


def test_sinks_see_events_the_ring_evicts():
    tracer = Tracer(TraceConfig(capacity=2))
    seen = []
    tracer.add_sink(seen.append)
    for cycle in range(4):
        tracer.stall(cycle, "FSTALL", FakeToken(cycle))
    assert len(tracer.events) == 2
    assert [event[1] for event in seen] == [0, 1, 2, 3]


def test_counts_and_firing_counts():
    tracer = Tracer(TraceConfig())
    tracer.firing(0, "fetch", FakeToken(1))
    tracer.firing(1, "fetch", FakeToken(2))
    tracer.firing(1, "decode", FakeToken(1))
    tracer.squash(2, "mispredict", FakeToken(2))
    assert tracer.counts() == {"firing": 3, "squash": 1}
    assert tracer.firing_counts() == {"fetch": 2, "decode": 1}


def test_clear_resets_ring_and_totals():
    tracer = Tracer(TraceConfig())
    tracer.firing(0, "t", None)
    tracer.clear()
    assert tracer.events == []
    assert tracer.recorded == 0


def test_event_dict_uses_category_field_names():
    row = event_dict(("cache", 7, "L1D", "miss", 0x2000, 11))
    assert row == {
        "cat": "cache",
        "cycle": 7,
        "level": "L1D",
        "kind": "miss",
        "address": 0x2000,
        "latency": 11,
    }


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer(TraceConfig())
    tracer.firing(0, "fetch", FakeToken(1))
    tracer.token_created(0, FakeToken(2), place="FD")
    path = tmp_path / "trace.jsonl"
    written = tracer.write_jsonl(str(path))
    assert written == 2
    meta, events = read_trace(str(path))
    assert meta["type"] == "meta"
    assert meta["recorded"] == 2
    assert [event["cat"] for event in events] == ["firing", "token"]
    assert events[1]["place"] == "FD"


# -- Chrome trace export and validation --------------------------------------


def _sample_meta():
    return {
        "type": "meta",
        "model": "toy",
        "stages": ["F", "D"],
        "places": {"FD": "F", "DE": "D"},
        "transitions": {
            "fetch": {
                "source": "FD",
                "source_stage": "F",
                "target": "DE",
                "target_stage": "D",
                "end": False,
                "consumes": False,
            },
            "retire": {
                "source": "DE",
                "source_stage": "D",
                "target": "END",
                "target_stage": None,
                "end": True,
                "consumes": False,
            },
        },
        "entries": {"alu": ["FD", "F"]},
    }


def _sample_events():
    return [
        {"cat": "token", "cycle": 0, "place": "FD", "seq": 1, "opclass": "alu", "pc": 4},
        {"cat": "firing", "cycle": 1, "transition": "fetch", "seq": 1, "opclass": "alu", "pc": 4},
        {"cat": "stall", "cycle": 2, "place": "DE", "seq": 1, "opclass": "alu", "pc": 4},
        {"cat": "firing", "cycle": 3, "transition": "retire", "seq": 1, "opclass": "alu", "pc": 4},
        {"cat": "squash", "cycle": 3, "cause": "mispredict", "seq": 2, "opclass": "alu", "pc": 8},
        {"cat": "cache", "cycle": 1, "level": "L1I", "kind": "miss", "address": 4, "latency": 11},
    ]


def test_chrome_trace_structure_is_valid():
    document = chrome_trace(_sample_meta(), _sample_events())
    assert validate_chrome_trace(document) == []
    phases = {event["ph"] for event in document["traceEvents"]}
    # metadata, slices, squash instants and counter tracks all present
    assert {"M", "X", "i", "C"} <= phases


def test_validate_chrome_trace_rejects_malformed_documents():
    assert validate_chrome_trace([]) == ["top level must be a JSON object, got list"]
    assert validate_chrome_trace({}) == ["traceEvents must be a JSON array"]
    assert validate_chrome_trace({"traceEvents": []}) == ["traceEvents is empty"]
    problems = validate_chrome_trace(
        {
            "traceEvents": [
                {"ph": "Z", "name": "?"},
                {"ph": "X", "name": "slice", "ts": 0, "dur": -1, "pid": 0, "tid": 0},
                {"ph": "i", "name": "mark", "pid": 0, "tid": 0},  # missing ts
            ]
        }
    )
    assert any("unknown phase" in problem for problem in problems)
    assert any("negative duration" in problem for problem in problems)
    assert any("missing field 'ts'" in problem for problem in problems)


# -- lifetime reconstruction -------------------------------------------------


def test_build_lifetimes_reconstructs_stage_visits():
    records = build_lifetimes(_sample_meta(), _sample_events())
    record = records[1]
    assert record.created == 0
    assert record.retired == 3
    assert record.stall_cycles == 1
    assert [(visit.stage, visit.enter, visit.leave) for visit in record.visits] == [
        ("F", 0, 1),
        ("D", 1, 3),
    ]
    assert record.stage_at(0) == "F"
    assert record.stage_at(2) == "D"
    squashed = records[2]
    assert squashed.squashed and squashed.squash_cause == "mispredict"
    assert squashed.squash_cycle == 3


def test_build_lifetimes_accepts_raw_tuples():
    events = [
        ("token", 0, "FD", 1, "alu", 4),
        ("firing", 1, "fetch", 1, "alu", 4),
    ]
    records = build_lifetimes(_sample_meta(), events)
    assert records[1].visits[0].stage == "F"


def test_render_pipeline_marks_stages_retire_and_squash():
    records = build_lifetimes(_sample_meta(), _sample_events())
    diagram = render_pipeline(_sample_meta(), records)
    lines = diagram.splitlines()
    assert "F=F" in lines[1] and "D=D" in lines[1]
    rows = {line.split()[0]: line for line in lines[3:]}
    assert rows["i1"][30:34] == "FDD="
    assert rows["i2"].rstrip().endswith("squashed(mispredict)")
    assert "x" in rows["i2"]


def test_render_pipeline_window_and_limit():
    records = {
        seq: InstructionLifetime(seq=seq, created=seq, retired=seq + 2)
        for seq in range(5)
    }
    diagram = render_pipeline({"stages": []}, records, start=2, end=5, limit=2)
    lines = diagram.splitlines()
    assert "2 instruction(s)" in lines[0]
    assert "cycles 2..4" in lines[0]
    assert render_pipeline({"stages": []}, {}) == "(no instruction lifetimes in trace)"


# -- metrics registry --------------------------------------------------------


def test_counter_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1)


def test_registry_get_or_create_and_kind_conflicts():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(TypeError, match="already registered"):
        registry.gauge("x")
    assert "x" in registry
    assert registry.names() == ["x"]


def test_histogram_summary_statistics():
    registry = MetricsRegistry()
    histogram = registry.histogram("h")
    for value in (1.0, 3.0, 2.0):
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 3
    assert snap["min"] == 1.0 and snap["max"] == 3.0
    assert snap["mean"] == pytest.approx(2.0)


def test_timer_accumulates_elapsed_seconds():
    registry = MetricsRegistry()
    with registry.timer("t"):
        pass
    with registry.timer("t"):
        pass
    assert registry.counter("t").value >= 0


def test_snapshot_value_handles_all_kinds():
    registry = MetricsRegistry()
    registry.counter("c").inc(4)
    registry.gauge("g").set(7)
    registry.histogram("h").observe(1.0)
    snapshot = registry.snapshot()
    assert snapshot_value(snapshot, "c") == 4
    assert snapshot_value(snapshot, "g") == 7
    assert snapshot_value(snapshot, "h") == 1  # histogram -> sample count
    assert snapshot_value(snapshot, "missing", default=-1) == -1
    assert snapshot_value(None, "missing", default=-1) == -1


def test_merge_cumulative_folds_counters_only():
    registry = MetricsRegistry()
    registry.counter("campaign.store.hits").inc(2)
    registry.gauge("campaign.units").set(5)
    snapshot = registry.snapshot()
    previous = {
        "campaign.store.hits": {"type": "counter", "value": 3},
        "campaign.units": {"type": "gauge", "value": 99},
        "campaign.store.misses": {"type": "counter", "value": 7},
    }
    merged = merge_cumulative(snapshot, previous, ("campaign.store.hits", "campaign.units"))
    assert merged["campaign.store.hits"]["value"] == 5
    assert merged["campaign.units"]["value"] == 5  # gauges never accumulate
    assert "campaign.store.misses" not in merged  # absent in current snapshot


def test_metrics_json_round_trip(tmp_path):
    registry = MetricsRegistry()
    registry.counter("c").inc(1)
    path = tmp_path / "metrics.json"
    write_metrics_json(str(path), registry.snapshot())
    assert read_metrics_json(str(path)) == registry.snapshot()
    assert read_metrics_json(str(tmp_path / "missing.json")) is None
    (tmp_path / "bad.json").write_text("not json", encoding="utf-8")
    assert read_metrics_json(str(tmp_path / "bad.json")) is None


def test_render_metrics_table_lists_every_metric():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(4.0)
    table = render_metrics(registry.snapshot())
    assert "metric" in table and "counter" in table
    assert "1.5000" in table
    assert "count=1" in table


def test_metrics_snapshot_is_json_serialisable():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(None)
    registry.histogram("h")
    json.dumps(registry.snapshot())
