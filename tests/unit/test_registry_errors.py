"""Registry ergonomics: did-you-mean suggestions and the deprecated shim."""

import importlib
import sys
import warnings

import pytest

from repro.core.exceptions import UnknownNameError
from repro.processors.registry import get_entry
from repro.workloads.kernels import kernel_source


class TestUnknownNameSuggestions:
    def test_processor_registry_suggests_close_matches(self):
        with pytest.raises(UnknownNameError) as caught:
            get_entry("strongam")
        error = caught.value
        assert "strongarm" in error.suggestions
        assert error.suggestions[0] == "strongarm"
        assert "did you mean 'strongarm'" in str(error)

    def test_workload_registry_suggests_close_matches(self):
        with pytest.raises(UnknownNameError) as caught:
            kernel_source("blowfsh")
        error = caught.value
        assert "blowfish" in error.suggestions
        assert "did you mean 'blowfish'?" in str(error)

    def test_no_suggestion_for_distant_names(self):
        with pytest.raises(UnknownNameError) as caught:
            get_entry("zzzzzz")
        error = caught.value
        assert error.suggestions == ()
        assert "did you mean" not in str(error)
        # The full listing is still there for cold lookups.
        assert "strongarm" in str(error)

    def test_non_string_lookup_does_not_crash_suggestions(self):
        with pytest.raises(UnknownNameError) as caught:
            get_entry(42)
        assert caught.value.suggestions == ()

    def test_campaign_planner_surfaces_suggestions(self):
        from repro.campaign import CampaignSpec, plan_campaign

        with pytest.raises(UnknownNameError, match="did you mean 'xscale'"):
            plan_campaign(
                CampaignSpec(name="typo", processors=("xsale",), workloads=("crc",))
            )


class TestDeprecatedCommonShim:
    def test_import_warns_and_reexports(self):
        sys.modules.pop("repro.processors.common", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.processors.common as common
        deprecations = [
            entry for entry in caught if issubclass(entry.category, DeprecationWarning)
        ]
        assert deprecations, "importing the shim must emit a DeprecationWarning"
        assert "repro.describe.substrate" in str(deprecations[0].message)

        # The shim stays a faithful re-export of the substrate module.
        substrate = importlib.import_module("repro.describe.substrate")
        assert common.__all__
        for name in common.__all__:
            assert getattr(common, name) is getattr(substrate, name)

    def test_reload_warns_again(self):
        sys.modules.pop("repro.processors.common", None)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.processors.common as common

        with pytest.warns(DeprecationWarning, match="deprecated shim"):
            importlib.reload(common)
