"""Fault tolerance of the sharded :class:`~repro.campaign.store.ResultStore`.

The store must survive everything a long-running sweep harness throws at
it: writers killed mid-append (truncated JSON lines), duplicate
fingerprints from racing campaigns, stores written by the legacy
single-file layout, and genuinely concurrent writer processes.  The
contract under test: **loading never raises** (corrupt lines are
quarantined, counted and reported), appends are serialised by per-shard
advisory locks, and ``compact`` rewrites any mess into clean shards with
a bit-identical index.
"""

import json
import multiprocessing
import os

import pytest

from repro.campaign.store import (
    DEFAULT_SHARD_COUNT,
    RESULTS_FILENAME,
    QuarantinedLine,
    ResultStore,
    RunResult,
    ShardLock,
    shard_index,
)


def _result(fingerprint, cycles=100, **overrides):
    fields = dict(
        fingerprint=fingerprint,
        campaign="test",
        run_id="strongarm/crc@1/interpreted",
        processor="strongarm",
        workload="crc",
        scale=1,
        engine="interpreted",
        backend="interpreted",
        repeat=0,
        cycles=cycles,
        instructions=50,
        final_r0=7,
        finish_reason="halt",
        wall_seconds=0.5,
        stats={"cycles": cycles},
    )
    fields.update(overrides)
    return RunResult(**fields)


def _hex_fingerprint(index):
    # The leading digits pick the shard, so vary them (zero-pad the tail).
    head = "%016x" % ((index * 0x9E3779B97F4A7C15) % (1 << 64))
    return head + "0" * 48


def _legacy_store(path, results):
    """Write a results.jsonl store the way the pre-sharding code did."""
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, RESULTS_FILENAME), "a", encoding="utf-8") as handle:
        for result in results:
            handle.write(json.dumps(result.to_json_dict(), sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# Sharded layout
# ---------------------------------------------------------------------------


class TestShardedLayout:
    def test_appends_land_in_the_fingerprint_prefix_shard(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = _result("ab" * 32)
        store.append(result)
        expected = "%03d.jsonl" % shard_index("ab" * 32, store.shard_count)
        assert os.path.exists(tmp_path / "store" / "shards" / expected)
        assert store.layout() == "sharded"

    def test_many_results_spread_over_multiple_shards(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for index in range(64):
            store.append(_result(_hex_fingerprint(index + 1)))
        shard_files = list((tmp_path / "store" / "shards").glob("*.jsonl"))
        assert len(shard_files) > 1
        assert len(ResultStore(tmp_path / "store")) == 64

    def test_shard_count_persists_in_store_meta(self, tmp_path):
        store = ResultStore(tmp_path / "store", shard_count=4)
        for index in range(16):
            store.append(_result(_hex_fingerprint(index + 1)))
        # A reader that asks for a different count still follows the meta
        # file, so records always map back to the shard they were written to.
        reopened = ResultStore(tmp_path / "store", shard_count=32)
        assert reopened.shard_count == 4
        assert len(reopened) == 16

    def test_default_shard_count(self, tmp_path):
        assert ResultStore(tmp_path / "store").shard_count == DEFAULT_SHARD_COUNT

    def test_non_hex_fingerprints_still_shard_deterministically(self):
        assert shard_index("not-hex!", 16) == shard_index("not-hex!", 16)
        assert 0 <= shard_index("not-hex!", 16) < 16


# ---------------------------------------------------------------------------
# Corruption tolerance (the ISSUE 9 regression: truncated final line)
# ---------------------------------------------------------------------------


class TestQuarantine:
    def _truncate_last_line(self, path):
        text = path.read_text()
        assert text.endswith("}\n")
        path.write_text(text[: len(text) // 2])  # mid-line kill

    def test_append_after_torn_tail_does_not_merge_lines(self, tmp_path):
        """Regression: appending to a shard whose last line lost its newline
        must seal the torn tail, not concatenate the new record onto it."""
        store = ResultStore(tmp_path / "store", shard_count=1)
        store.append(_result("a" * 64, cycles=100))
        shard = tmp_path / "store" / "shards" / "000.jsonl"
        self._truncate_last_line(shard)  # torn tail, no trailing newline

        fresh = ResultStore(tmp_path / "store")
        fresh.append(_result("b" * 64, cycles=200))

        reloaded = ResultStore(tmp_path / "store")
        index = reloaded.load()
        assert set(index) == {"b" * 64}  # the new record survived intact
        assert index["b" * 64].cycles == 200
        assert len(reloaded.quarantined()) == 1  # the torn junk, alone

    def test_truncated_last_line_is_quarantined_not_fatal(self, tmp_path):
        """Regression: a writer killed mid-append used to brick the store."""
        store = ResultStore(tmp_path / "store")
        intact = [_result(_hex_fingerprint(index + 1)) for index in range(5)]
        for result in intact:
            store.append(result)
        victim = tmp_path / "store" / "shards" / (
            "%03d.jsonl" % shard_index(intact[-1].fingerprint, store.shard_count)
        )
        self._truncate_last_line(victim)

        reloaded = ResultStore(tmp_path / "store")
        index = reloaded.load()  # must not raise
        # Every result whose line is still intact warm-loads.
        lost = {
            result.fingerprint
            for result in intact
            if result.fingerprint not in index
        }
        assert len(lost) == 1  # only the torn line
        assert len(reloaded.quarantined()) == 1
        assert reloaded.quarantined()[0].line > 0

    def test_truncated_legacy_store_loads_every_intact_result(self, tmp_path):
        results = [_result(_hex_fingerprint(index + 1)) for index in range(4)]
        _legacy_store(tmp_path / "store", results)
        path = tmp_path / "store" / RESULTS_FILENAME
        text = path.read_text()
        path.write_text(text[:-10])  # kill the writer mid-final-line

        store = ResultStore(tmp_path / "store")
        index = store.load()
        assert set(index) == {result.fingerprint for result in results[:3]}
        assert len(store.quarantined()) == 1

    @pytest.mark.parametrize(
        "garbage",
        ["{truncated", '"a bare string"', "[1, 2, 3]", '{"fingerprint": "x"}'],
        ids=["torn-json", "non-object-string", "non-object-list", "missing-fields"],
    )
    def test_garbage_lines_are_skipped_counted_and_reported(self, tmp_path, garbage):
        store = ResultStore(tmp_path / "store")
        good = _result("ab" * 32)
        store.append(good)
        shard = tmp_path / "store" / "shards" / (
            "%03d.jsonl" % shard_index(good.fingerprint, store.shard_count)
        )
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write(garbage + "\n")

        reloaded = ResultStore(tmp_path / "store")
        assert reloaded.get(good.fingerprint).cycles == good.cycles
        quarantined = reloaded.quarantined()
        assert len(quarantined) == 1
        assert isinstance(quarantined[0], QuarantinedLine)
        assert quarantined[0].reason
        health = reloaded.health()
        assert health["quarantined"] == 1
        assert health["results"] == 1

    def test_blank_lines_are_not_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.append(_result("ab" * 32))
        shard = next((tmp_path / "store" / "shards").glob("*.jsonl"))
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        reloaded = ResultStore(tmp_path / "store")
        assert len(reloaded) == 1
        assert reloaded.quarantined() == ()


# ---------------------------------------------------------------------------
# Legacy layout and migration
# ---------------------------------------------------------------------------


class TestLegacyAndMigration:
    def test_legacy_single_file_store_is_auto_detected_and_readable(self, tmp_path):
        results = [_result(_hex_fingerprint(index + 1)) for index in range(3)]
        _legacy_store(tmp_path / "store", results)
        store = ResultStore(tmp_path / "store")
        assert store.layout() == "legacy"
        assert len(store) == 3

    def test_appends_to_a_legacy_store_go_to_shards(self, tmp_path):
        _legacy_store(tmp_path / "store", [_result("aa" * 32)])
        store = ResultStore(tmp_path / "store")
        store.append(_result("bb" * 32))
        assert store.layout() == "mixed"
        reloaded = ResultStore(tmp_path / "store")
        assert len(reloaded) == 2

    def test_shard_record_wins_over_stale_legacy_duplicate(self, tmp_path):
        # Chronology of a mixed store: the legacy line predates migration,
        # the shard line is the newer append — last write wins.
        _legacy_store(tmp_path / "store", [_result("aa" * 32, cycles=100)])
        store = ResultStore(tmp_path / "store")
        store.append(_result("aa" * 32, cycles=999))
        reloaded = ResultStore(tmp_path / "store")
        assert len(reloaded) == 1
        assert reloaded.get("aa" * 32).cycles == 999

    def test_compact_migrates_legacy_to_sharded(self, tmp_path):
        results = [_result(_hex_fingerprint(index + 1)) for index in range(8)]
        _legacy_store(tmp_path / "store", results)
        store = ResultStore(tmp_path / "store")
        before = store.load()

        report = store.compact()
        assert report.migrated_legacy
        assert report.results == 8
        assert not os.path.exists(tmp_path / "store" / RESULTS_FILENAME)
        assert store.layout() == "sharded"
        assert ResultStore(tmp_path / "store").load() == before


# ---------------------------------------------------------------------------
# Compaction
# ---------------------------------------------------------------------------


class TestCompaction:
    def test_compact_drops_duplicates_and_quarantined_lines(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.append(_result("aa" * 32, cycles=100))
        store.append(_result("bb" * 32, cycles=200))
        store.append(_result("aa" * 32, cycles=300))  # duplicate, last wins
        shard = tmp_path / "store" / "shards" / (
            "%03d.jsonl" % shard_index("bb" * 32, store.shard_count)
        )
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"torn...\n')

        fresh = ResultStore(tmp_path / "store")
        before = fresh.load()  # index with the corruption quarantined
        report = fresh.compact()
        assert report.duplicates_dropped == 1
        assert report.quarantined_dropped == 1
        assert report.results == 2

        after = ResultStore(tmp_path / "store")
        # The acceptance bar: the post-compaction index is bit-identical.
        assert after.load() == before
        assert after.quarantined() == ()
        assert after.health()["quarantined"] == 0
        # Exactly one line per surviving result remains on disk.
        lines = sum(
            len(path.read_text().splitlines())
            for path in (tmp_path / "store" / "shards").glob("*.jsonl")
        )
        assert lines == 2

    def test_compact_can_reshard(self, tmp_path):
        store = ResultStore(tmp_path / "store", shard_count=2)
        for index in range(32):
            store.append(_result(_hex_fingerprint(index + 1)))
        before = store.load()
        store.compact(shard_count=8)
        reopened = ResultStore(tmp_path / "store")
        assert reopened.shard_count == 8
        assert reopened.load() == before
        assert len(list((tmp_path / "store" / "shards").glob("*.jsonl"))) > 2

    def test_compact_removes_stale_shard_files(self, tmp_path):
        store = ResultStore(tmp_path / "store", shard_count=16)
        for index in range(32):
            store.append(_result(_hex_fingerprint(index + 1)))
        before = store.load()
        store.compact(shard_count=1)  # everything collapses into shard 000
        shards = list((tmp_path / "store" / "shards").glob("*.jsonl"))
        assert [path.name for path in shards] == ["000.jsonl"]
        assert ResultStore(tmp_path / "store").load() == before

    def test_compact_of_an_empty_store_is_harmless(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = store.compact()
        assert report.results == 0
        assert len(store) == 0


# ---------------------------------------------------------------------------
# Locks
# ---------------------------------------------------------------------------


class TestLocking:
    def test_lock_acquire_release_cycle(self, tmp_path):
        lock = ShardLock(tmp_path / "file.jsonl")
        with lock:
            assert lock.wait_seconds >= 0.0
        with ShardLock(tmp_path / "file.jsonl"):  # re-acquirable after release
            pass

    def test_lockfile_fallback_without_fcntl_or_msvcrt(self, tmp_path, monkeypatch):
        from repro.campaign import store as store_module

        monkeypatch.setattr(store_module, "fcntl", None)
        monkeypatch.setattr(store_module, "msvcrt", None)
        store = ResultStore(tmp_path / "store")
        store.append(_result("ab" * 32))
        assert len(ResultStore(tmp_path / "store")) == 1
        # The exclusive lockfile is removed on release.
        assert not list((tmp_path / "store" / "shards").glob("*.lock"))

    def test_append_records_lock_metrics(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.append(_result("ab" * 32))
        store.append(_result("cd" * 32))
        assert store.counters["lock_acquisitions"] == 2
        assert store.counters["lock_wait_seconds"] >= 0.0


# ---------------------------------------------------------------------------
# Concurrent writers (two real processes, shard locking)
# ---------------------------------------------------------------------------


def _writer_process(path, start, count):
    store = ResultStore(path)
    for index in range(start, start + count):
        store.append(_result(_hex_fingerprint(index + 1), cycles=index))


class TestConcurrentWriters:
    def test_two_processes_append_without_losing_or_corrupting_lines(self, tmp_path):
        path = str(tmp_path / "store")
        count = 40
        workers = [
            multiprocessing.Process(
                target=_writer_process, args=(path, side * count, count)
            )
            for side in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0

        store = ResultStore(path)
        assert len(store) == 2 * count  # zero lost
        assert store.quarantined() == ()  # zero corrupt
        by_fp = store.load()
        for index in range(2 * count):
            assert by_fp[_hex_fingerprint(index + 1)].cycles == index
