"""Unit tests for the workload kernels, the generator and the baseline simulators."""

import pytest

from repro.baseline import (
    FunctionalSimulator,
    InOrderPipelineSimulator,
    SimpleScalarLikeSimulator,
)
from repro.workloads import (
    SyntheticWorkloadGenerator,
    get_workload,
    kernel_source,
    workload_names,
)
from repro.workloads.kernels import load_const
from repro.isa import assemble, CPUState, decode, execute
from repro.memory import MainMemory

KERNELS = workload_names()


def test_workload_names_match_the_paper():
    assert KERNELS == ("adpcm", "blowfish", "compress", "crc", "g721", "go")


@pytest.mark.parametrize("name", KERNELS)
def test_kernels_assemble(name):
    workload = get_workload(name, scale=1)
    assert len(workload.program.words) > 10
    assert workload.suite in ("MiBench", "MediaBench", "SPEC95")


@pytest.mark.parametrize("name", KERNELS)
def test_kernels_run_and_halt_on_functional_simulator(name):
    workload = get_workload(name, scale=1)
    simulator = FunctionalSimulator()
    simulator.load_program(workload.program)
    stats = simulator.run(max_instructions=2_000_000)
    assert stats.halted
    assert stats.instructions > 1000
    assert simulator.register(0) != 0  # every kernel leaves a checksum in r0
    assert stats.syscalls >= 1


@pytest.mark.parametrize("name", KERNELS)
def test_kernels_scale_with_the_scale_parameter(name):
    small = FunctionalSimulator()
    small.load_program(get_workload(name, scale=1).program)
    big = FunctionalSimulator()
    big.load_program(get_workload(name, scale=2).program)
    assert big.run().instructions > small.run().instructions


def test_unknown_kernel_name_raises():
    with pytest.raises(KeyError):
        kernel_source("dhrystone")


def test_load_const_builds_arbitrary_constants():
    for value in (0, 1, 0xEDB88320, 0xFFFFFFFF, 0x12345678):
        source = "main:\n%s\n    halt\n" % load_const("r0", value)
        program = assemble(source)
        memory = MainMemory()
        memory.load_program(program)
        state = CPUState()
        while not state.halted:
            execute(decode(memory.read_word(state.pc)), state, memory, address=state.pc)
        assert state.regs[0] == value


def test_synthetic_generator_respects_mix_and_terminates():
    generator = SyntheticWorkloadGenerator(
        mix={"alu": 8, "load": 1, "store": 1}, body_length=16, iterations=8, seed=3
    )
    simulator = FunctionalSimulator()
    simulator.load_program(generator.program())
    stats = simulator.run(max_instructions=100_000)
    assert stats.halted
    assert stats.executed_by_class["alu"] > stats.executed_by_class.get("mem", 0)


def test_synthetic_generator_rejects_unknown_categories():
    with pytest.raises(ValueError):
        SyntheticWorkloadGenerator(mix={"vector": 1})


def test_synthetic_generator_is_deterministic_per_seed():
    a = SyntheticWorkloadGenerator(seed=7).source()
    b = SyntheticWorkloadGenerator(seed=7).source()
    c = SyntheticWorkloadGenerator(seed=8).source()
    assert a == b
    assert a != c


# -- baselines ----------------------------------------------------------------------

@pytest.mark.parametrize("simulator_class", [SimpleScalarLikeSimulator, InOrderPipelineSimulator])
@pytest.mark.parametrize("name", ["crc", "adpcm"])
def test_cycle_accurate_baselines_match_functional_state(simulator_class, name):
    workload = get_workload(name, scale=1)
    functional = FunctionalSimulator()
    functional.load_program(workload.program)
    fstats = functional.run()

    baseline = simulator_class()
    baseline.load_program(workload.program)
    bstats = baseline.run()

    assert bstats.finish_reason == "halt"
    assert baseline.register(0) == functional.register(0)
    assert bstats.cycles >= bstats.instructions  # CPI >= 1 for single-issue machines


@pytest.mark.parametrize("simulator_class", [SimpleScalarLikeSimulator, InOrderPipelineSimulator])
def test_baseline_cpi_in_plausible_band(simulator_class):
    workload = get_workload("go", scale=1)
    baseline = simulator_class()
    baseline.load_program(workload.program)
    stats = baseline.run()
    assert 1.0 <= stats.cpi <= 4.0


def test_functional_simulator_decode_cache_effectiveness():
    workload = get_workload("crc", scale=1)
    simulator = FunctionalSimulator()
    simulator.load_program(workload.program)
    simulator.run()
    assert len(simulator._decode_cache) < simulator.stats.instructions / 10


def test_simplescalar_reports_cache_statistics():
    workload = get_workload("blowfish", scale=1)
    baseline = SimpleScalarLikeSimulator()
    baseline.load_program(workload.program)
    baseline.run()
    stats = baseline.cache_statistics()
    assert stats["dcache"].accesses > 0
    assert stats["icache"].accesses > 0
