"""Zero/sub-tick wall-time measurements must degrade to 0.0, never raise.

A sufficiently fast run on a coarse host clock (or a mocked result in a
test) reports ``wall_seconds == 0``.  Every throughput-style division in
the codebase must treat that as "no measurable throughput" — returning
``0.0`` — rather than raising ``ZeroDivisionError`` or leaking ``inf``
into tables and JSON exports.  This file pins the guard at every site:
the core statistics properties (which were always guarded), the analysis
``speedup`` helper, and the campaign aggregation tables.
"""

import math

from repro.analysis.metrics import BenchmarkResult, speedup
from repro.campaign.aggregate import speedup_table, throughput_table
from repro.campaign.store import RunResult
from repro.core.statistics import SimulationStatistics


def bench_result(wall_seconds, cycles=1000):
    return BenchmarkResult(
        simulator="toy",
        workload="crc",
        cycles=cycles,
        instructions=cycles // 2,
        wall_seconds=wall_seconds,
        final_r0=0,
    )


def run_result(engine, wall_seconds, cycles=1000, repeat=0):
    return RunResult(
        fingerprint="fp-%s-%d" % (engine, repeat),
        campaign="c",
        run_id="r-%s-%d" % (engine, repeat),
        processor="strongarm",
        workload="crc",
        scale=1,
        engine=engine,
        backend=engine,
        repeat=repeat,
        cycles=cycles,
        instructions=cycles // 2,
        final_r0=0,
        finish_reason="halt",
        wall_seconds=wall_seconds,
    )


def test_run_result_cpi_guards_zero_instructions():
    """A run that retired nothing has no measurable CPI — 0.0, not inf."""
    empty = run_result("interpreted", 0.5, cycles=0)
    assert empty.instructions == 0
    assert empty.cpi == 0.0
    assert math.isfinite(empty.cpi)
    # The guard must not disturb the normal path.
    assert run_result("interpreted", 0.5, cycles=1000).cpi == 2.0


def test_simulation_statistics_rates_guard_zero_wall():
    stats = SimulationStatistics()
    stats.cycles = 1000
    stats.instructions = 500
    stats.wall_time_seconds = 0.0
    assert stats.cycles_per_second == 0.0
    assert stats.instructions_per_second == 0.0
    stats.wall_time_seconds = -1.0  # clock skew degrades the same way
    assert stats.cycles_per_second == 0.0


def test_benchmark_result_rate_guards_zero_wall():
    assert bench_result(0.0).cycles_per_second == 0.0
    assert bench_result(0.0).mcycles_per_second == 0.0


def test_analysis_speedup_returns_zero_for_unmeasurable_baseline():
    fast = bench_result(0.5)
    stalled_baseline = bench_result(0.0)
    assert speedup(fast, stalled_baseline) == 0.0
    assert speedup(stalled_baseline, fast) == 0.0


def test_speedup_table_zero_baseline_yields_zero_not_inf():
    results = [
        run_result("interpreted", 0.0),
        run_result("compiled", 0.5),
    ]
    rows = speedup_table(results)
    assert len(rows) == 1
    assert rows[0]["speedup"] == 0.0
    assert all(math.isfinite(v) for v in rows[0].values() if isinstance(v, float))


def test_throughput_table_zero_walls_yield_zero_not_inf():
    results = [
        run_result("generated", 0.0),
        run_result("batched", 0.0),
    ]
    rows = throughput_table(results)
    assert len(rows) == 1
    assert rows[0]["generated_rows_per_sec"] == 0.0
    assert rows[0]["batched_rows_per_sec"] == 0.0
    assert rows[0]["throughput_ratio"] == 0.0


def test_throughput_table_zero_baseline_only():
    results = [
        run_result("generated", 0.0),
        run_result("batched", 0.25),
    ]
    rows = throughput_table(results)
    assert rows[0]["generated_rows_per_sec"] == 0.0
    assert rows[0]["batched_rows_per_sec"] == 4.0
    assert rows[0]["throughput_ratio"] == 0.0
